#include "sim/experiment.hh"

#include <cstdlib>

#include "util/status.hh"
#include "util/strings.hh"

namespace tl
{

namespace
{

std::uint64_t
readBranchBudgetFromEnv()
{
    if (const char *env = std::getenv("TL_BENCH_BRANCHES")) {
        auto value = parseU64(env);
        if (value && *value > 0)
            return *value;
        warn("ignoring invalid TL_BENCH_BRANCHES='%s'", env);
    }
    return 200000;
}

} // namespace

std::uint64_t
defaultBranchBudget()
{
    // Read once: callers must not depend on the process environment
    // changing mid-run (and worker threads must not race getenv
    // against a setenv elsewhere).
    static const std::uint64_t cachedBudget = readBranchBudgetFromEnv();
    return cachedBudget;
}

WorkloadSuite::WorkloadSuite(std::uint64_t condBranches)
    : budget(condBranches ? condBranches : defaultBranchBudget())
{
}

std::shared_ptr<const Trace>
WorkloadSuite::cached(std::map<std::string, Entry> &cache,
                      const Workload &workload, bool wantTraining)
{
    std::promise<std::shared_ptr<const Trace>> promise;
    Entry entry;
    bool producer = false;
    {
        MutexLock lock(mutex);
        auto it = cache.find(workload.name());
        if (it == cache.end()) {
            producer = true;
            entry = promise.get_future().share();
            cache.emplace(workload.name(), entry);
        } else {
            entry = it->second;
        }
    }
    // Trace generation happens outside the lock so different
    // workloads can be captured concurrently; waiters on the same
    // workload block on the shared_future instead of the mutex.
    if (producer) {
        try {
            promise.set_value(std::make_shared<const Trace>(
                wantTraining ? workload.captureTraining(budget)
                             : workload.captureTesting(budget)));
        } catch (...) { // tl-lint: allow(catch-all)
            // Not swallowed: the exception is published through the
            // shared_future, so this waiter and every other one
            // rethrows it from entry.get() below. Without this, a
            // throwing capture would leave an unfulfilled promise in
            // the cache and later waiters would block forever.
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

std::shared_ptr<const Trace>
WorkloadSuite::testingTrace(const Workload &workload)
{
    return cached(testingTraces, workload, false);
}

std::shared_ptr<const FlatTrace>
WorkloadSuite::flatTestingTrace(const Workload &workload)
{
    std::promise<std::shared_ptr<const FlatTrace>> promise;
    FlatEntry entry;
    bool producer = false;
    {
        MutexLock lock(mutex);
        auto it = flatTestingTraces.find(workload.name());
        if (it == flatTestingTraces.end()) {
            producer = true;
            entry = promise.get_future().share();
            flatTestingTraces.emplace(workload.name(), entry);
        } else {
            entry = it->second;
        }
    }
    // The transpose source is the cached AoS trace, so the two views
    // can never drift; testingTrace() handles its own locking.
    if (producer) {
        try {
            promise.set_value(std::make_shared<const FlatTrace>(
                *testingTrace(workload)));
        } catch (...) { // tl-lint: allow(catch-all)
            // Published, not swallowed — see cached().
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

StatusOr<std::shared_ptr<const Trace>>
WorkloadSuite::tryTraining(const Workload &workload)
{
    if (!workload.hasTraining()) {
        return failedPreconditionError(
            "workload '%s' has no training dataset (Table 2: NA)",
            workload.name().c_str());
    }
    return cached(trainingTraces, workload, true);
}

const Trace &
WorkloadSuite::testing(const Workload &workload)
{
    return *testingTrace(workload);
}

const Trace &
WorkloadSuite::training(const Workload &workload)
{
    auto trace = tryTraining(workload);
    if (!trace.ok())
        fatal("%s", trace.status().message().c_str());
    return **trace;
}

} // namespace tl
