#include "sim/experiment.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>

#include "util/status.hh"
#include "util/strings.hh"

namespace tl
{

namespace
{

std::uint64_t
readBranchBudgetFromEnv()
{
    if (const char *env = std::getenv("TL_BENCH_BRANCHES")) {
        auto value = parseU64(env);
        if (value && *value > 0)
            return *value;
        warn("ignoring invalid TL_BENCH_BRANCHES='%s'", env);
    }
    return 200000;
}

TraceStreamingOptions
readStreamingFromEnv()
{
    TraceStreamingOptions options;
    if (const char *env = std::getenv("TL_STREAM_TRACES")) {
        if (std::strcmp(env, "1") == 0) {
            options.enabled = true;
        } else if (std::strcmp(env, "0") == 0) {
            options.autoThreshold = 0; // explicit off: never auto
        } else {
            warn("ignoring invalid TL_STREAM_TRACES='%s' (want 0 or 1)",
                 env);
        }
    }
    if (const char *env = std::getenv("TL_STREAM_THRESHOLD")) {
        if (auto value = parseU64(env))
            options.autoThreshold = *value;
        else
            warn("ignoring invalid TL_STREAM_THRESHOLD='%s'", env);
    }
    if (const char *env = std::getenv("TL_SPILL_DIR")) {
        if (*env)
            options.spillDir = env;
    }
    if (const char *env = std::getenv("TL_CHUNK_RECORDS")) {
        auto value = parseU64(env);
        if (value && *value > 0 && *value <= 0xffffffffu)
            options.chunkRecords = static_cast<std::uint32_t>(*value);
        else
            warn("ignoring invalid TL_CHUNK_RECORDS='%s'", env);
    }
    return options;
}

/** mkdir -p: create @p dir and any missing parents. */
Status
ensureDirectory(const std::string &dir)
{
    for (std::size_t slash = dir.find('/', 1);;
         slash = dir.find('/', slash + 1)) {
        std::string prefix =
            slash == std::string::npos ? dir : dir.substr(0, slash);
        if (!prefix.empty() &&
            ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
            return ioError("cannot create spill directory '%s': %s",
                           prefix.c_str(), std::strerror(errno));
        }
        if (slash == std::string::npos)
            return Status();
    }
}

} // namespace

std::uint64_t
defaultBranchBudget()
{
    // Read once: callers must not depend on the process environment
    // changing mid-run (and worker threads must not race getenv
    // against a setenv elsewhere).
    static const std::uint64_t cachedBudget = readBranchBudgetFromEnv();
    return cachedBudget;
}

const TraceStreamingOptions &
defaultTraceStreaming()
{
    // Read once, same contract as defaultBranchBudget().
    static const TraceStreamingOptions cachedOptions =
        readStreamingFromEnv();
    return cachedOptions;
}

WorkloadSuite::WorkloadSuite(std::uint64_t condBranches)
    : budget(condBranches ? condBranches : defaultBranchBudget()),
      streamingOptions(defaultTraceStreaming())
{
}

void
WorkloadSuite::setStreaming(const TraceStreamingOptions &options)
{
    streamingOptions = options;
}

bool
WorkloadSuite::streamingTesting() const
{
    return streamingOptions.enabled ||
           (streamingOptions.autoThreshold != 0 &&
            budget >= streamingOptions.autoThreshold);
}

std::shared_ptr<const Trace>
WorkloadSuite::cached(std::map<std::string, Entry> &cache,
                      const Workload &workload, bool wantTraining)
{
    std::promise<std::shared_ptr<const Trace>> promise;
    Entry entry;
    bool producer = false;
    {
        MutexLock lock(mutex);
        auto it = cache.find(workload.name());
        if (it == cache.end()) {
            producer = true;
            entry = promise.get_future().share();
            cache.emplace(workload.name(), entry);
        } else {
            entry = it->second;
        }
    }
    // Trace generation happens outside the lock so different
    // workloads can be captured concurrently; waiters on the same
    // workload block on the shared_future instead of the mutex.
    if (producer) {
        try {
            promise.set_value(std::make_shared<const Trace>(
                wantTraining ? workload.captureTraining(budget)
                             : workload.captureTesting(budget)));
        } catch (...) { // tl-lint: allow(catch-all)
            // Not swallowed: the exception is published through the
            // shared_future, so this waiter and every other one
            // rethrows it from entry.get() below. Without this, a
            // throwing capture would leave an unfulfilled promise in
            // the cache and later waiters would block forever.
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

std::shared_ptr<const Trace>
WorkloadSuite::testingTrace(const Workload &workload)
{
    return cached(testingTraces, workload, false);
}

std::shared_ptr<const FlatTrace>
WorkloadSuite::flatTestingTrace(const Workload &workload)
{
    std::promise<std::shared_ptr<const FlatTrace>> promise;
    FlatEntry entry;
    bool producer = false;
    {
        MutexLock lock(mutex);
        auto it = flatTestingTraces.find(workload.name());
        if (it == flatTestingTraces.end()) {
            producer = true;
            entry = promise.get_future().share();
            flatTestingTraces.emplace(workload.name(), entry);
        } else {
            entry = it->second;
        }
    }
    // The transpose source is the cached AoS trace, so the two views
    // can never drift; testingTrace() handles its own locking.
    if (producer) {
        try {
            promise.set_value(std::make_shared<const FlatTrace>(
                *testingTrace(workload)));
        } catch (...) { // tl-lint: allow(catch-all)
            // Published, not swallowed — see cached().
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

StatusOr<std::shared_ptr<const Trace>>
WorkloadSuite::tryTraining(const Workload &workload)
{
    if (!workload.hasTraining()) {
        return failedPreconditionError(
            "workload '%s' has no training dataset (Table 2: NA)",
            workload.name().c_str());
    }
    return cached(trainingTraces, workload, true);
}

const Trace &
WorkloadSuite::testing(const Workload &workload)
{
    return *testingTrace(workload);
}

const Trace &
WorkloadSuite::training(const Workload &workload)
{
    auto trace = tryTraining(workload);
    if (!trace.ok())
        fatal("%s", trace.status().message().c_str());
    return **trace;
}

StatusOr<std::string>
WorkloadSuite::captureSpill(const Workload &workload) const
{
    TL_RETURN_IF_ERROR(ensureDirectory(streamingOptions.spillDir));
    std::string path = streamingOptions.spillDir + "/" +
                       workload.name() + "-testing-" +
                       std::to_string(budget) + "-c" +
                       std::to_string(streamingOptions.chunkRecords) +
                       ".tl3";
    // A finished spill from an earlier process (a resumed sweep) is
    // deterministic — same workload, budget and chunking — so reuse
    // it when its header and footer parse strictly. A writer killed
    // mid-capture leaves a file that fails this check (count 0, no
    // footer) and is simply recaptured.
    {
        TraceReadOptions strict;
        strict.salvageTruncated = false;
        StatusOr<ChunkedTraceSource> existing =
            ChunkedTraceSource::open(path, strict);
        if (existing.ok() && existing->recordCount() > 0)
            return path;
    }
    auto source = workload.openTestingCapture(budget);
    ChunkedTraceWriter writer;
    TL_RETURN_IF_ERROR(
        writer.open(path, streamingOptions.chunkRecords));
    TL_RETURN_IF_ERROR(writer.appendAll(*source));
    TL_RETURN_IF_ERROR(writer.finish());
    return path;
}

StatusOr<std::string>
WorkloadSuite::streamTestingPath(const Workload &workload)
{
    std::promise<StatusOr<std::string>> promise;
    SpillEntry entry;
    bool producer = false;
    {
        MutexLock lock(mutex);
        auto it = spillPaths.find(workload.name());
        if (it == spillPaths.end()) {
            producer = true;
            entry = promise.get_future().share();
            spillPaths.emplace(workload.name(), entry);
        } else {
            entry = it->second;
        }
    }
    // Capture outside the lock, like cached(): concurrent cells on
    // the same workload block on the shared_future, not the mutex.
    if (producer) {
        try {
            promise.set_value(captureSpill(workload));
        } catch (...) { // tl-lint: allow(catch-all)
            // Published, not swallowed — see cached().
            promise.set_exception(std::current_exception());
        }
    }
    return entry.get();
}

StatusOr<std::unique_ptr<TraceSource>>
WorkloadSuite::streamTraining(const Workload &workload) const
{
    if (!workload.hasTraining()) {
        return failedPreconditionError(
            "workload '%s' has no training dataset (Table 2: NA)",
            workload.name().c_str());
    }
    return workload.openCapture(workload.trainingDataset(), budget);
}

} // namespace tl
