#include "sim/experiment.hh"

#include <cstdlib>

#include "util/status.hh"
#include "util/strings.hh"

namespace tl
{

std::uint64_t
defaultBranchBudget()
{
    if (const char *env = std::getenv("TL_BENCH_BRANCHES")) {
        auto value = parseU64(env);
        if (value && *value > 0)
            return *value;
        warn("ignoring invalid TL_BENCH_BRANCHES='%s'", env);
    }
    return 200000;
}

WorkloadSuite::WorkloadSuite(std::uint64_t condBranches)
    : budget(condBranches ? condBranches : defaultBranchBudget())
{
}

const Trace &
WorkloadSuite::testing(const Workload &workload)
{
    auto it = testingTraces.find(workload.name());
    if (it == testingTraces.end()) {
        it = testingTraces
                 .emplace(workload.name(),
                          workload.captureTesting(budget))
                 .first;
    }
    return it->second;
}

const Trace &
WorkloadSuite::training(const Workload &workload)
{
    auto it = trainingTraces.find(workload.name());
    if (it == trainingTraces.end()) {
        it = trainingTraces
                 .emplace(workload.name(),
                          workload.captureTraining(budget))
                 .first;
    }
    return it->second;
}

ResultSet
runOnSuite(const std::string &displayName, const PredictorFactory &make,
           WorkloadSuite &suite, const SimOptions &options)
{
    ResultSet results(displayName);
    for (const Workload *workload : allWorkloads()) {
        std::unique_ptr<BranchPredictor> predictor = make();
        if (predictor->needsTraining()) {
            if (!workload->hasTraining())
                continue; // omitted point, as in the paper's Fig. 11
            TraceReplaySource training(suite.training(*workload));
            predictor->train(training);
        }
        SimResult sim =
            simulate(suite.testing(*workload), *predictor, options);
        results.add(BenchmarkResult{workload->name(),
                                    workload->isInteger(), sim});
    }
    return results;
}

ResultSet
runOnSuite(const std::string &specText, WorkloadSuite &suite,
           SimOptions options)
{
    SchemeSpec spec = SchemeSpec::parse(specText);
    if (spec.contextSwitch)
        options.contextSwitches = true;
    return runOnSuite(
        spec.toString(), [&spec] { return makePredictor(spec); },
        suite, options);
}

} // namespace tl
