/**
 * @file
 * Multiprogrammed simulation.
 *
 * The paper models context switches by flushing the branch history
 * table on every trap or 500k-instruction quantum (Section 5.1.4).
 * That is an approximation of what really happens: another process's
 * branches run through the same hardware and evict/alias the
 * predictor's state. This module simulates the real thing — several
 * workload traces time-sliced through one predictor — so the quality
 * of the paper's flush approximation can be measured
 * (bench/ablation_multiprogram).
 *
 * Two address-space models are provided:
 *  - shared (offset 0): processes alias each other's table entries,
 *    like physically-indexed tables without ASIDs;
 *  - disjoint (a per-process address offset): no aliasing, only the
 *    history staleness of being descheduled remains.
 */

#ifndef TL_SIM_MULTIPROGRAM_HH
#define TL_SIM_MULTIPROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "predictor/predictor.hh"
#include "sim/engine.hh"
#include "trace/io.hh"
#include "trace/trace.hh"
#include "util/status_or.hh"

namespace tl
{

/** Options for a multiprogrammed run. */
struct MultiProgramOptions
{
    /** Instructions per scheduling quantum. */
    std::uint64_t quantum = 500000;

    /**
     * Per-process pc offset multiplier: process i's addresses are
     * shifted by i * addressOffset. 0 = fully shared address space
     * (maximum aliasing); a large value (e.g. 1 << 30) = disjoint.
     */
    std::uint64_t addressOffset = 0;

    /**
     * Notify the predictor (contextSwitch(), i.e. the paper's flush)
     * at every quantum boundary. Off by default: the point of the
     * multiprogrammed simulation is to let the *other process* do
     * the damage instead of an explicit flush.
     */
    bool flushOnSwitch = false;

    /**
     * Deschedule a process immediately when one of its records
     * carries the trap marker (a system call blocks and the OS runs
     * someone else) — the same trigger the paper's flush model uses.
     */
    bool switchOnTrap = true;
};

/** Per-process and aggregate results of a multiprogrammed run. */
struct MultiProgramResult
{
    /** One SimResult per process, in input order. */
    std::vector<SimResult> perProcess;

    /**
     * One Status per process, in input order. A non-OK entry means
     * the workload could not run (e.g. its trace failed to load) and
     * its SimResult is all-zero; the other processes still completed.
     */
    std::vector<Status> perProcessStatus;

    /** Scheduling switches performed. */
    std::uint64_t switches = 0;

    /** Processes whose status is non-OK. */
    std::size_t failedProcesses() const;

    /** Aggregate accuracy over the processes that ran. */
    double accuracyPercent() const;

    /**
     * Paper-style per-workload table including each process's error
     * status. @p names labels the rows (default "p0", "p1", ...).
     */
    std::string report(const std::vector<std::string> &names = {}) const;
};

/**
 * Time-slice @p traces through @p predictor.
 *
 * Round-robin over the processes; a process's turn ends when its
 * quantum of instructions elapses (or its trace ends). Each process
 * replays its trace once. Conditional branches are predicted and
 * verified exactly as in simulate().
 *
 * Fails with StatusCode::InvalidArgument when @p traces is empty,
 * holds a null pointer, or options.quantum is zero.
 */
[[nodiscard]] StatusOr<MultiProgramResult>
trySimulateMultiprogrammed(const std::vector<const Trace *> &traces,
                           BranchPredictor &predictor,
                           const MultiProgramOptions &options = {});

/** Shim around trySimulateMultiprogrammed(): fatal() on failure. */
[[nodiscard]] MultiProgramResult
simulateMultiprogrammed(const std::vector<const Trace *> &traces,
                        BranchPredictor &predictor,
                        const MultiProgramOptions &options = {});

/**
 * Load each trace file in @p paths and time-slice the loadable ones
 * through @p predictor: graceful degradation for multi-workload
 * evaluations. A workload whose trace fails to load (missing file,
 * corrupt bytes) is reported in perProcessStatus and skipped — the
 * remaining programs still complete, and result slots stay aligned
 * with @p paths. @p readOptions is forwarded to the trace reader, so
 * salvage mode can be requested per run.
 *
 * Fails (FailedPrecondition) only when every workload is unusable or
 * the options are invalid.
 */
[[nodiscard]] StatusOr<MultiProgramResult> simulateMultiprogrammedFromFiles(
    const std::vector<std::string> &paths, BranchPredictor &predictor,
    const MultiProgramOptions &options = {},
    const TraceReadOptions &readOptions = {});

} // namespace tl

#endif // TL_SIM_MULTIPROGRAM_HH
