#include "sim/attribution.hh"

#include "sim/engine.hh"

namespace tl
{

namespace detail
{

void
attributionObserve(MissAttributor &attribution,
                   const BranchQuery &query, bool predicted,
                   bool taken, const BranchPredictor &predictor)
{
    attribution.observe(query, predicted, taken, predictor);
}

} // namespace detail

void
AttributionSnapshot::merge(const AttributionSnapshot &other)
{
    topPcs.merge(other.topPcs);
    taxonomy.merge(other.taxonomy);
    branches += other.branches;
    misses += other.misses;
    staticBranches += other.staticBranches;
}

void
MissAttributor::observe(const BranchQuery &branch, bool predicted,
                        bool taken, const BranchPredictor &predictor)
{
    ++state.branches;
    const bool miss = predicted != taken;

    // Track the PC even when the scheme offers no probe, so
    // staticBranches counts every distinct conditional branch.
    ShadowSite &site = shadow[branch.pc];

    std::optional<ShadowProbe> probe = predictor.shadowProbe(branch.pc);
    if (!probe || !probe->automaton) {
        if (miss) {
            ++state.misses;
            state.topPcs.offer(branch.pc);
            ++state.taxonomy.unclassified;
        }
        return;
    }

    auto [entry, fresh] = site.try_emplace(
        probe->pattern, probe->automaton->initState());
    if (miss) {
        ++state.misses;
        state.topPcs.offer(branch.pc);
        if (fresh) {
            ++state.taxonomy.cold;
        } else if (probe->automaton->predict(entry->second) == taken) {
            ++state.taxonomy.interference;
        } else {
            ++state.taxonomy.hysteresis;
        }
    }
    entry->second = probe->automaton->next(entry->second, taken);
}

AttributionSnapshot
MissAttributor::snapshot() const
{
    AttributionSnapshot out = state;
    out.staticBranches = shadow.size();
    return out;
}

AttributionCollector::Scheme &
AttributionCollector::slot(const std::string &name)
{
    for (Scheme &scheme : table) {
        if (scheme.name == name)
            return scheme;
    }
    table.push_back(Scheme{name, AttributionSnapshot(k), 0, 0});
    return table.back();
}

void
AttributionCollector::add(const std::string &scheme,
                          const AttributionSnapshot &snapshot)
{
    Scheme &entry = slot(scheme);
    entry.folded.merge(snapshot);
    ++entry.cells;
}

void
AttributionCollector::markMissing(const std::string &scheme)
{
    Scheme &entry = slot(scheme);
    ++entry.cells;
    ++entry.missingCells;
}

bool
AttributionCollector::complete() const
{
    for (const Scheme &scheme : table) {
        if (scheme.missingCells > 0)
            return false;
    }
    return true;
}

} // namespace tl
