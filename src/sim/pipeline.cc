#include "sim/pipeline.hh"

#include "util/status.hh"

namespace tl
{

void
PipelineModel::validate() const
{
    if (issueWidth == 0)
        fatal("pipeline model: issue width must be positive");
}

PipelineEstimate
estimateCycles(const SimResult &result, const PipelineModel &model)
{
    model.validate();
    PipelineEstimate estimate;
    estimate.instructions = result.instructions;
    estimate.baseCycles = double(result.instructions) /
                          double(model.issueWidth);
    std::uint64_t mispredicts =
        result.conditionalBranches - result.correct;
    estimate.mispredictCycles =
        double(mispredicts) * double(model.mispredictPenalty);
    return estimate;
}

PipelineEstimate
estimateCycles(const FetchResult &result, std::uint64_t instructions,
               const PipelineModel &model)
{
    model.validate();
    PipelineEstimate estimate;
    estimate.instructions = instructions;
    estimate.baseCycles =
        double(instructions) / double(model.issueWidth);
    estimate.mispredictCycles = double(result.mispredicts) *
                                double(model.mispredictPenalty);
    estimate.misfetchCycles =
        double(result.misfetches) * double(model.misfetchPenalty);
    return estimate;
}

double
speedup(const SimResult &better, const SimResult &worse,
        const PipelineModel &model)
{
    PipelineEstimate fast = estimateCycles(better, model);
    PipelineEstimate slow = estimateCycles(worse, model);
    if (fast.totalCycles() <= 0.0)
        fatal("speedup: empty simulation result");
    return slow.totalCycles() / fast.totalCycles();
}

} // namespace tl
