/**
 * @file
 * Per-benchmark result collection and the geometric-mean summary rows
 * the paper reports under every figure: "Int GMean" (integer
 * benchmarks), "FP GMean" (floating point benchmarks) and "Tot GMean"
 * (all benchmarks).
 */

#ifndef TL_SIM_METRICS_HH
#define TL_SIM_METRICS_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hh"

namespace tl
{

/** One benchmark's simulation outcome under one predictor. */
struct BenchmarkResult
{
    std::string benchmark;
    bool isInteger = false;
    SimResult sim;
};

/** A column of Figure-style results: one predictor, nine benchmarks. */
class ResultSet
{
  public:
    /** @param scheme Display name of the predictor. */
    explicit ResultSet(std::string scheme = "");

    /** Predictor display name. */
    const std::string &scheme() const { return schemeName; }

    /** Append one benchmark's result. */
    void add(BenchmarkResult result);

    /** All results in insertion order. */
    const std::vector<BenchmarkResult> &results() const
    {
        return entries;
    }

    /** Accuracy for @p benchmark; empty if absent. */
    std::optional<double> accuracy(const std::string &benchmark) const;

    /**
     * Geometric mean accuracy across all benchmarks (percent).
     *
     * Convention for all three gmean accessors: an empty selection
     * (no results at all, or — for the class means — a set whose
     * benchmarks are all of the other class) yields 0.0, as does a
     * selection containing a zero accuracy (a zero factor makes the
     * product zero). 0.0 therefore always means "no meaningful
     * mean", never a panic.
     */
    double totalGMean() const;

    /** Geometric mean accuracy across integer benchmarks (percent). */
    double intGMean() const;

    /** Geometric mean across floating point benchmarks (percent). */
    double fpGMean() const;

  private:
    double gmeanWhere(bool wantInteger, bool all) const;

    std::string schemeName;
    std::vector<BenchmarkResult> entries;
};

} // namespace tl

#endif // TL_SIM_METRICS_HH
