/**
 * @file
 * Misprediction provenance: *which* static branches miss, and *why*.
 *
 * The paper's figures count how many branches each two-level variant
 * mispredicts; this layer attributes every miss to a PC and a cause,
 * the observability substrate for the H2P (hard-to-predict branch)
 * science of ROADMAP item 4 — showing that a small set of static
 * branches concentrates the misses of every scheme, per Lin & Tarsa's
 * "Branch Prediction Is Not a Solved Problem" (PAPERS.md).
 *
 * The attributor rides the *generic* simulation tier only: the engine
 * calls MissAttributor::observe() between predict() and update() for
 * BranchPredictor-derived predictors when SimOptions::attribution is
 * set. The FastTwoLevel lanes never see it — a constexpr guard keeps
 * the symbols out of their object code, and the hot-path gate
 * (tools/analyze/hotpath_gate.py) bans them there outright.
 * simulateDispatch() falls back to the virtual tier when attribution
 * is requested.
 *
 * Per-PC totals live in a Space-Saving sketch (util/topk.hh): bounded
 * memory, exact while the distinct-miss-PC count stays under the
 * capacity, and deterministic to merge — per-cell attributors folded
 * in grid-index order give byte-identical top-K tables for serial and
 * N-thread sweeps (the PR 4 harvest contract).
 *
 * Each miss is classified with a *shadow per-PC-tagged pattern
 * table*: a private automaton per (PC, history pattern), fed the same
 * stream of outcomes as the real predictor (predictor.hh's
 * ShadowProbe supplies the pattern and the automaton). Because the
 * shadow is tagged by PC it is free of the inter-branch pattern-table
 * interference the paper analyzes for shared PHTs, so:
 *
 *  - Cold          — first time this (PC, pattern) pair was seen; no
 *                    predictor could have known (first-touch miss);
 *  - Interference  — the shadow predicted correctly, so the shared
 *                    table's entry was disturbed by other branches
 *                    (destructive aliasing; ~0 for per-address PHTs);
 *  - Hysteresis    — the shadow missed too: the automaton itself lags
 *                    the branch's behaviour (state-machine inertia);
 *  - Unclassified  — the scheme offered no ShadowProbe (speculative
 *                    history modes, non-two-level schemes).
 *
 * Cost: the shadow table is O(static branches x live patterns) per
 * cell — this is an opt-in diagnosis run, not the benchmark path.
 */

#ifndef TL_SIM_ATTRIBUTION_HH
#define TL_SIM_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "predictor/automaton.hh"
#include "predictor/predictor.hh"
#include "util/topk.hh"

namespace tl
{

/** Per-cause miss counts (see the file comment for the taxonomy). */
struct MissTaxonomy
{
    std::uint64_t cold = 0;
    std::uint64_t interference = 0;
    std::uint64_t hysteresis = 0;
    std::uint64_t unclassified = 0;

    std::uint64_t
    total() const
    {
        return cold + interference + hysteresis + unclassified;
    }

    void
    merge(const MissTaxonomy &other)
    {
        cold += other.cold;
        interference += other.interference;
        hysteresis += other.hysteresis;
        unclassified += other.unclassified;
    }

    bool operator==(const MissTaxonomy &) const = default;
};

/** One cell's (or one folded scheme's) attribution state. */
struct AttributionSnapshot
{
    explicit AttributionSnapshot(std::size_t topK) : topPcs(topK) {}

    /** Per-PC miss counts, heaviest hitters first. */
    SpaceSaving<std::uint64_t> topPcs;

    MissTaxonomy taxonomy;

    /** Conditional branches observed. */
    std::uint64_t branches = 0;

    /** Mispredictions observed (== taxonomy.total()). */
    std::uint64_t misses = 0;

    /**
     * Distinct static branch PCs observed. Folded snapshots sum the
     * per-cell counts: cells simulate distinct workloads, so this is
     * the denominator of the coverage curve ("top N static branches
     * carry X% of misses") across the whole grid.
     */
    std::uint64_t staticBranches = 0;

    /** Grid-order fold; preserves every sketch and taxonomy bound. */
    void merge(const AttributionSnapshot &other);
};

/**
 * The per-run observer. Single-threaded by design (one per sweep
 * cell, like the cell-private MetricsRegistry); the engine calls
 * observe() once per conditional branch, between predict() and
 * update().
 */
class MissAttributor
{
  public:
    /**
     * Default sketch capacity. Large enough that the nine M88-lite
     * workloads' miss PCs fit without eviction (the sketch stays
     * exact), small enough to bound a billion-branch stream.
     */
    static constexpr std::size_t kDefaultTopK = 64;

    explicit MissAttributor(std::size_t topK = kDefaultTopK)
        : state(topK)
    {
    }

    std::size_t topK() const { return state.topPcs.capacity(); }

    /**
     * Record one resolved branch: @p predicted is what @p predictor
     * answered for @p branch, @p taken the architectural outcome.
     * Must be called after predict() and before update() — the
     * ShadowProbe contract pins the pattern to the one predict()
     * used.
     */
    void observe(const BranchQuery &branch, bool predicted,
                 bool taken, const BranchPredictor &predictor);

    /** Copy out the current totals (shadow table stays private). */
    AttributionSnapshot snapshot() const;

  private:
    /** Shadow automaton states for one PC, keyed by pattern. */
    using ShadowSite =
        std::unordered_map<std::uint64_t, Automaton::State>;

    AttributionSnapshot state;
    std::unordered_map<std::uint64_t, ShadowSite> shadow;
};

/**
 * Folds per-cell snapshots into per-scheme tables for the manifest.
 * Deterministic under the same contract as MetricsRegistry::merge:
 * the sweep folds cells in grid-index order after the parallel
 * barrier, so scheme order and every count are identical for serial
 * and N-thread runs.
 *
 * Cells that produced a result but no snapshot (e.g. restored from a
 * checkpoint, which journals results only) are markMissing()ed: the
 * scheme keeps its partial table and the manifest's `complete` flag
 * drops, telling validators not to cross-check totals against result
 * cells.
 */
class AttributionCollector
{
  public:
    struct Scheme
    {
        std::string name;
        AttributionSnapshot folded;
        std::uint64_t cells = 0;
        std::uint64_t missingCells = 0;
    };

    explicit AttributionCollector(
        std::size_t topK = MissAttributor::kDefaultTopK)
        : k(topK)
    {
    }

    std::size_t topK() const { return k; }

    /** Fold one executed cell's snapshot into @p scheme's table. */
    void add(const std::string &scheme,
             const AttributionSnapshot &snapshot);

    /** Note a @p scheme cell whose snapshot is unavailable. */
    void markMissing(const std::string &scheme);

    /** True when every contributing cell brought a snapshot. */
    bool complete() const;

    /** Schemes in first-contribution (grid) order. */
    const std::vector<Scheme> &schemes() const { return table; }

  private:
    Scheme &slot(const std::string &name);

    std::size_t k;
    std::vector<Scheme> table;
};

} // namespace tl

#endif // TL_SIM_ATTRIBUTION_HH
