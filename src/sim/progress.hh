/**
 * @file
 * Throttled progress reporting shared by SweepRunner and
 * SweepSupervisor.
 *
 * Worker threads finishing cells call tick() concurrently; the meter
 * fires the user callback at most once per interval (the final cell
 * always fires). Before the thread-safety annotation pass this state
 * lived in mutex-guarded *locals* of the two run() functions, which
 * Clang Thread Safety Analysis cannot annotate — hoisting it into a
 * class with TL_GUARDED_BY members makes the discipline provable.
 */

#ifndef TL_SIM_PROGRESS_HH
#define TL_SIM_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>

#include "util/annotations.hh"
#include "util/mutex.hh"

namespace tl
{

/** Rate-limited (cells done, cells total) progress callback. */
class ProgressMeter
{
  public:
    using Clock = std::chrono::steady_clock;
    using Callback = std::function<void(std::size_t, std::size_t)>;

    /**
     * @param callback  user callback; empty disables the meter
     * @param intervalSeconds  minimum seconds between callbacks
     * @param start  throttling epoch (the sweep start time)
     */
    ProgressMeter(const Callback &callback, double intervalSeconds,
                  Clock::time_point start)
        : report(callback),
          interval(intervalSeconds),
          last(start)
    {
    }

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    /**
     * Count one finished cell (of @p total) at time @p now and fire
     * the callback if due. Serialized internally; the callback runs
     * under the meter's mutex, so it need not be thread-safe, but it
     * must not call back into the meter.
     */
    void
    tick(std::size_t total, Clock::time_point now)
    {
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (!report)
            return;
        MutexLock lock(mutex);
        const double since =
            std::chrono::duration<double>(now - last).count();
        if (finished == total || since >= interval) {
            last = now;
            report(finished, total);
        }
    }

  private:
    const Callback &report;
    const double interval;
    std::atomic<std::size_t> done{0};
    Mutex mutex;
    Clock::time_point last TL_GUARDED_BY(mutex);
};

} // namespace tl

#endif // TL_SIM_PROGRESS_HH
