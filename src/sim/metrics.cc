#include "sim/metrics.hh"

#include "util/stats.hh"

namespace tl
{

ResultSet::ResultSet(std::string scheme)
    : schemeName(std::move(scheme))
{
}

void
ResultSet::add(BenchmarkResult result)
{
    entries.push_back(std::move(result));
}

std::optional<double>
ResultSet::accuracy(const std::string &benchmark) const
{
    for (const BenchmarkResult &entry : entries) {
        if (entry.benchmark == benchmark)
            return entry.sim.accuracyPercent();
    }
    return std::nullopt;
}

double
ResultSet::gmeanWhere(bool wantInteger, bool all) const
{
    std::vector<double> values;
    for (const BenchmarkResult &entry : entries) {
        if (all || entry.isInteger == wantInteger)
            values.push_back(entry.sim.accuracyPercent());
    }
    return geometricMean(values);
}

double
ResultSet::totalGMean() const
{
    return gmeanWhere(false, true);
}

double
ResultSet::intGMean() const
{
    return gmeanWhere(true, false);
}

double
ResultSet::fpGMean() const
{
    return gmeanWhere(false, false);
}

} // namespace tl
