#include "sim/metrics.hh"

#include "util/stats.hh"

namespace tl
{

ResultSet::ResultSet(std::string scheme)
    : schemeName(std::move(scheme))
{
}

void
ResultSet::add(BenchmarkResult result)
{
    entries.push_back(std::move(result));
}

std::optional<double>
ResultSet::accuracy(const std::string &benchmark) const
{
    for (const BenchmarkResult &entry : entries) {
        if (entry.benchmark == benchmark)
            return entry.sim.accuracyPercent();
    }
    return std::nullopt;
}

double
ResultSet::gmeanWhere(bool wantInteger, bool all) const
{
    std::vector<double> values;
    for (const BenchmarkResult &entry : entries) {
        if (all || entry.isInteger == wantInteger) {
            double accuracy = entry.sim.accuracyPercent();
            // A zero factor annihilates the product; report 0.0
            // instead of feeding geometricMean() a value it rejects.
            if (accuracy <= 0.0)
                return 0.0;
            values.push_back(accuracy);
        }
    }
    return geometricMean(values); // 0.0 on an empty selection
}

double
ResultSet::totalGMean() const
{
    return gmeanWhere(false, true);
}

double
ResultSet::intGMean() const
{
    return gmeanWhere(true, false);
}

double
ResultSet::fpGMean() const
{
    return gmeanWhere(false, false);
}

} // namespace tl
