/**
 * @file
 * The parallel experiment engine: fan a (predictor configuration x
 * workload) grid out across a work-stealing thread pool.
 *
 * The unit of work is one *cell* — one fresh predictor simulated over
 * one benchmark's trace. Cells are independent by construction (a
 * fresh predictor per cell, immutable shared traces), so the sweep is
 * deterministic: serial and parallel runs produce identical metrics,
 * and results always come back in (column, registry) order no matter
 * how the scheduler interleaved the cells. tests/test_determinism.cc
 * asserts this counter-for-counter; the tsan preset re-checks it
 * under ThreadSanitizer.
 *
 * All knobs travel in RunOptions — no environment reads mid-run.
 *
 * Instrumented runs: RunOptions can carry a MetricsRegistry (counter
 * totals, harvested deterministically), an EventLog (a cell-by-cell
 * JSONL timeline) and a throttled progress callback; the runner also
 * keeps a wall-clock SweepProfile of its last run. The registry
 * contents are part of the determinism contract — per-cell counter
 * snapshots are merged in grid-index order after the parallel
 * barrier, so totals are byte-identical for threads=0 and threads=N.
 * The profile and the event timeline are observational (timings vary
 * run to run) and never feed back into results.
 */

#ifndef TL_SIM_SWEEP_HH
#define TL_SIM_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/attribution.hh"
#include "sim/experiment.hh"
#include "sim/streaming.hh"
#include "util/metrics.hh"

namespace tl
{

class EventLog;

/** Options for a suite run or sweep; plain data, no env reads. */
struct RunOptions
{
    /**
     * Worker threads for the sweep. 0 runs every cell serially on
     * the calling thread (the deterministic baseline the parallel
     * path must match).
     */
    unsigned threads = 0;

    /**
     * Conditional branches per benchmark; 0 uses
     * defaultBranchBudget(). Only consulted when the runner builds
     * its own WorkloadSuite — a caller-supplied suite already fixed
     * its budget.
     */
    std::uint64_t branchBudget = 0;

    /**
     * Fraction of the trace simulated before counters start, in
     * [0, 1). The predictor keeps the warmed state; only the
     * remaining (1 - warmupFraction) of the trace is measured. 0
     * measures from cold, as the paper does.
     */
    double warmupFraction = 0.0;

    /** Simulate context switches for every column. */
    bool contextSwitches = false;

    /** Instruction quantum between forced switches (Sec. 5.1.4). */
    std::uint64_t contextSwitchInterval = 500000;

    /** Also switch on every trap marker in the trace. */
    bool switchOnTrap = true;

    /**
     * Turn on predictor-internal tallying (BHT hit/miss/eviction,
     * PHT transitions, speculative-history repairs) for every cell.
     * Off by default so the Release hot path stays unchanged; a
     * non-null #metrics implies instrumentation too.
     */
    bool instrument = false;

    /**
     * Where instrumented cells deposit their counters. The runner
     * snapshots each cell's tallies privately and merges them into
     * this registry in grid-index order after the sweep, so the
     * totals do not depend on #threads. Not owned; may be null.
     */
    MetricsRegistry *metrics = nullptr;

    /**
     * Structured event sink for the sweep timeline (sweep.start,
     * cell.start, cell.done, sweep.done). Not owned; may be null or
     * disabled.
     */
    EventLog *events = nullptr;

    /**
     * Where misprediction provenance is folded (sim/attribution.hh).
     * Non-null routes every cell's *measured* phase through the
     * generic tier with a cell-private MissAttributor and folds the
     * snapshots per scheme in grid-index order after the barrier —
     * the same determinism contract as #metrics, so the top-K tables
     * are byte-identical for threads=0 and threads=N. Warmup stays
     * unattributed, mirroring what the result counters measure. Not
     * owned; may be null (the default: zero overhead, and the fast
     * dispatch lanes stay in play).
     */
    AttributionCollector *attribution = nullptr;

    /**
     * Progress callback, called with (cells finished, cells total)
     * from whichever thread finished a cell, throttled to at most one
     * call per #progressInterval seconds (the final cell always
     * reports). Must be thread-safe for threaded runs.
     */
    std::function<void(std::size_t, std::size_t)> progress;

    /** Minimum seconds between progress callbacks. */
    double progressInterval = 0.25;

    /// @name Supervision knobs (consulted by sim/supervisor.hh only;
    /// a plain SweepRunner ignores them).
    /// @{

    /**
     * Wall-clock budget per cell in seconds; 0 disables the deadline.
     * A supervised cell that exceeds it is cancelled cooperatively
     * (via SimOptions::cancelToken) and reported timed-out; the rest
     * of the grid is unaffected.
     */
    double cellDeadline = 0.0;

    /**
     * Attempts per cell before a retryable failure (isRetryable in
     * util/status_or.hh) becomes terminal. 1 = no retry; 0 is
     * treated as 1.
     */
    unsigned maxCellAttempts = 1;

    /**
     * Base of the exponential backoff between retry attempts:
     * attempt n waits retryBackoffSeconds * 2^(n-1) before retrying.
     * 0 retries immediately (keeps tests fast and deterministic).
     */
    double retryBackoffSeconds = 0.0;

    /// @}
};

/** Timing record of one sweep cell (observational only). */
struct CellProfile
{
    std::string column;   //!< column display name
    std::string workload; //!< benchmark name

    /** Pool worker that ran the cell; -1 = the calling thread. */
    int worker = -1;

    /** Seconds from sweep start until the cell began (queue wait). */
    double queueSeconds = 0.0;

    /** Seconds the cell spent simulating. */
    double wallSeconds = 0.0;

    /** Column omitted this benchmark (no training set, Fig. 11). */
    bool skipped = false;
};

/** Wall-clock profile of one sweep (observational only). */
struct SweepProfile
{
    /** RunOptions::threads of the run. */
    unsigned threads = 0;

    /** Sweep wall time, barrier to barrier. */
    double wallSeconds = 0.0;

    /** One record per cell, in grid (column-major cell) order. */
    std::vector<CellProfile> cells;

    /**
     * Busy seconds per execution slot: slot 0 is the calling thread,
     * slot i + 1 is pool worker i. Serial runs use only slot 0.
     */
    std::vector<double> workerBusySeconds;

    /** Total busy seconds across all slots. */
    double busySeconds() const;

    /**
     * Mean fraction of the sweep wall time the occupied slots spent
     * busy — 1.0 means every slot computed the whole time.
     */
    double occupancy() const;
};

/** One column of a sweep: a predictor configuration to run. */
struct SweepSpec
{
    /** Column label in reports. */
    std::string displayName;

    /** Fresh-predictor factory, called once per cell. */
    PredictorFactory make;

    /**
     * Turn on context switches for this column only (a Table-3
     * spec's ",c" flag), independent of RunOptions::contextSwitches.
     */
    bool contextSwitches = false;
};

/** Build a SweepSpec from a parsed Table-3 spec. */
SweepSpec sweepSpec(const SchemeSpec &spec);

/** Build a SweepSpec from Table-3 spec text; fatal() on bad text. */
SweepSpec sweepSpec(std::string_view specText);

/**
 * Everything one executed cell produces, including the failure facts
 * a supervisor needs to classify the outcome.
 */
struct CellExecution
{
    /** nullopt when the column skips this benchmark or was cancelled. */
    std::optional<BenchmarkResult> result;

    /** The cell's private counter harvest (empty when off). */
    MetricsSnapshot metrics;

    /**
     * Why training was unavailable when the cell was skipped
     * (FailedPrecondition for Table 2 NA entries, IoError/CorruptData
     * for broken training traces); OK for an executed cell.
     */
    Status trainingStatus;

    /** The cancel token stopped the warmup or measured simulation. */
    bool cancelled = false;

    /**
     * Why a streaming cell could not run (or stopped early): spill
     * capture failure, an unreadable spill file, or a mid-replay
     * chunk error. OK for in-RAM cells and healthy streamed ones. A
     * cell with a non-OK streamStatus has no result.
     */
    Status streamStatus;

    /**
     * Measured-phase provenance; engaged only when
     * RunOptions::attribution requested it and the cell executed.
     */
    std::optional<AttributionSnapshot> attribution;
};

/**
 * Execute one sweep cell — one fresh predictor from @p column over
 * @p workload's trace under @p options — and report everything that
 * happened. This is the single cell implementation shared by
 * SweepRunner (which discards the failure detail) and SweepSupervisor
 * (which classifies it); @p cancel, when non-null, is polled by the
 * simulation loop so a watchdog can reclaim the worker.
 *
 * When the suite streams (WorkloadSuite::streamingTesting()), the
 * cell replays the workload's v3 spill file window by window through
 * a private mmap instead of touching the materialized trace caches;
 * @p progress then fires after every fully consumed window (the
 * supervisor journals these as checkpoint chunk cursors). Streamed
 * and in-RAM cells are counter-identical (sim/streaming.hh).
 */
CellExecution runSweepCell(WorkloadSuite &suite,
                           const RunOptions &options,
                           const SweepSpec &column,
                           const Workload &workload,
                           const std::atomic<bool> *cancel = nullptr,
                           const StreamProgressFn &progress = {});

/**
 * Runs (configuration x workload) grids over the nine-benchmark
 * suite, optionally in parallel. One fresh predictor per cell;
 * result ordering is deterministic regardless of scheduling.
 */
class SweepRunner
{
  public:
    /** Own a suite (budget from options.branchBudget). */
    explicit SweepRunner(RunOptions options = {});

    /**
     * Share @p suite (must outlive the runner). The suite's budget
     * wins; options.branchBudget is ignored.
     */
    explicit SweepRunner(WorkloadSuite &suite, RunOptions options = {});

    /** The trace cache used by this runner. */
    WorkloadSuite &suite() { return *suitePtr; }

    const RunOptions &options() const { return runOptions; }

    /**
     * Run every (column, workload) cell of the grid. Results come
     * back one ResultSet per column, in column order, each with its
     * benchmarks in registry order. Columns that need training skip
     * benchmarks whose Table 2 entry is NA, as in the paper's
     * Figure 11.
     */
    std::vector<ResultSet> run(const std::vector<SweepSpec> &columns);

    /** Single-column convenience. */
    ResultSet run(const SweepSpec &column);

    /** Single-column convenience from Table-3 spec text. */
    ResultSet run(std::string_view specText);

    /** Wall-clock profile of the most recent run(). */
    const SweepProfile &lastProfile() const { return profile; }

  private:
    /** Everything one cell produces. */
    struct CellOutcome
    {
        /** nullopt when the column skips this benchmark. */
        std::optional<BenchmarkResult> result;

        /** The cell's private counter harvest (empty when off). */
        MetricsSnapshot metrics;

        /** Provenance snapshot (engaged when attribution is on). */
        std::optional<AttributionSnapshot> attribution;
    };

    CellOutcome runCell(const SweepSpec &column,
                        const Workload &workload) const;

    RunOptions runOptions;
    std::unique_ptr<WorkloadSuite> ownedSuite;
    WorkloadSuite *suitePtr;
    SweepProfile profile;
};

/**
 * Run one scheme over every benchmark, options-driven: serial at the
 * default options, plus threads / warmup / explicit context-switch /
 * instrumentation control through RunOptions.
 */
ResultSet runSuite(const std::string &displayName,
                   const PredictorFactory &make, WorkloadSuite &suite,
                   const RunOptions &options = {});

/**
 * Convenience overload: build predictors from a Table-3 style spec
 * string; the spec's ",c" flag turns on context-switch simulation
 * for this column.
 */
ResultSet runSuite(const std::string &specText, WorkloadSuite &suite,
                   const RunOptions &options = {});

} // namespace tl

#endif // TL_SIM_SWEEP_HH
