#include "sim/sweep.hh"

#include <atomic>
#include <chrono>

#include "sim/progress.hh"
#include "util/check.hh"
#include "util/event_log.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace tl
{

namespace
{

using SweepClock = std::chrono::steady_clock;

double
elapsedSeconds(SweepClock::time_point from, SweepClock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

double
SweepProfile::busySeconds() const
{
    double total = 0.0;
    for (double slot : workerBusySeconds)
        total += slot;
    return total;
}

double
SweepProfile::occupancy() const
{
    std::size_t occupied = 0;
    for (double slot : workerBusySeconds)
        occupied += slot > 0.0 ? 1 : 0;
    if (occupied == 0 || wallSeconds <= 0.0)
        return 0.0;
    return busySeconds() /
           (wallSeconds * static_cast<double>(occupied));
}

SweepSpec
sweepSpec(const SchemeSpec &spec)
{
    SweepSpec column;
    column.displayName = spec.toString();
    column.contextSwitches = spec.contextSwitch;
    column.make = factoryFromSpec(spec);
    return column;
}

SweepSpec
sweepSpec(std::string_view specText)
{
    return sweepSpec(SchemeSpec::parse(specText));
}

SweepRunner::SweepRunner(RunOptions options)
    : runOptions(options),
      ownedSuite(std::make_unique<WorkloadSuite>(options.branchBudget)),
      suitePtr(ownedSuite.get())
{
    if (runOptions.warmupFraction < 0.0 ||
        runOptions.warmupFraction >= 1.0) {
        fatal("RunOptions::warmupFraction must be in [0, 1), got %g",
              runOptions.warmupFraction);
    }
}

SweepRunner::SweepRunner(WorkloadSuite &suite, RunOptions options)
    : runOptions(options), suitePtr(&suite)
{
    if (runOptions.warmupFraction < 0.0 ||
        runOptions.warmupFraction >= 1.0) {
        fatal("RunOptions::warmupFraction must be in [0, 1), got %g",
              runOptions.warmupFraction);
    }
}

CellExecution
runSweepCell(WorkloadSuite &suite, const RunOptions &options,
             const SweepSpec &column, const Workload &workload,
             const std::atomic<bool> *cancel,
             const StreamProgressFn &progress)
{
    CellExecution out;
    const bool instrumented =
        options.instrument || options.metrics != nullptr;
    const bool streamed = suite.streamingTesting();

    std::unique_ptr<BranchPredictor> predictor = column.make();
    if (instrumented)
        predictor->enableInstrumentation();

    if (predictor->needsTraining()) {
        if (streamed) {
            // Single-pass live capture: training never materializes
            // either. The NA / broken-trace status semantics match
            // the in-RAM branch below.
            StatusOr<std::unique_ptr<TraceSource>> training =
                suite.streamTraining(workload);
            if (!training.ok()) {
                out.trainingStatus = training.status();
                if (instrumented) {
                    MetricsRegistry cellMetrics;
                    cellMetrics.add("sweep.cellsSkipped");
                    out.metrics = cellMetrics.snapshot();
                }
                return out;
            }
            predictor->train(**training);
        } else {
            StatusOr<std::shared_ptr<const Trace>> training =
                suite.tryTraining(workload);
            if (!training.ok()) {
                // Omitted point, as in Fig. 11. The status is
                // preserved so a supervisor can tell an NA benchmark
                // (FailedPrecondition, permanent) from a broken
                // training trace (IoError, worth a retry).
                out.trainingStatus = training.status();
                if (instrumented) {
                    MetricsRegistry cellMetrics;
                    cellMetrics.add("sweep.cellsSkipped");
                    out.metrics = cellMetrics.snapshot();
                }
                return out;
            }
            TraceReplaySource source(**training);
            predictor->train(source);
        }
    }

    SimOptions sim;
    sim.contextSwitches =
        options.contextSwitches || column.contextSwitches;
    sim.contextSwitchInterval = options.contextSwitchInterval;
    sim.switchOnTrap = options.switchOnTrap;
    sim.cancelToken = cancel;

    // Cell-private attributor, measured phase only (attached to `sim`
    // after the warmup split below): provenance describes the same
    // branches the result counters count, and the warmup stays on the
    // fast dispatch lanes.
    std::optional<MissAttributor> attributor;
    if (options.attribution)
        attributor.emplace(options.attribution->topK());

    const std::uint64_t warmupBranches =
        options.warmupFraction > 0.0
            ? static_cast<std::uint64_t>(
                  options.warmupFraction *
                  static_cast<double>(suite.condBranches()))
            : 0;

    SimResult result;
    if (streamed) {
        // Stream the v3 spill file through a cell-private mmap; the
        // StreamCursor persists across the warmup/measured split, so
        // the split record is the same one the in-RAM path measures
        // from (sim/streaming.hh's determinism argument).
        StatusOr<std::string> path = suite.streamTestingPath(workload);
        if (!path.ok()) {
            out.streamStatus = path.status();
            return out;
        }
        StatusOr<ChunkedTraceSource> spill =
            ChunkedTraceSource::open(*path);
        if (!spill.ok()) {
            out.streamStatus = spill.status();
            return out;
        }
        ChunkWindowSupplier supplier(*spill);
        StreamCursor cursor(supplier);
        if (warmupBranches > 0) {
            SimOptions warmup = sim;
            warmup.maxConditionalBranches = warmupBranches;
            SimResult warm = simulateStreamDispatch(cursor, *predictor,
                                                    warmup, progress);
            if (warm.cancelled) {
                out.cancelled = true;
                return out;
            }
        }
        if (attributor)
            sim.attribution = &*attributor;
        result = simulateStreamDispatch(cursor, *predictor, sim,
                                        progress);
        if (!cursor.status().ok()) {
            // The replay ended on a damaged chunk: the counters are
            // a prefix of the real run, so the cell reports failure
            // rather than a silently-short result.
            out.streamStatus = cursor.status();
            return out;
        }
        if (result.cancelled) {
            out.cancelled = true;
            return out;
        }
    } else {
        // The measured replay runs on the structure-of-arrays view
        // through the devirtualizing dispatcher — the sweep hot path.
        // The cursor carries the resume position across the warmup/
        // measured split exactly like a TraceReplaySource would.
        std::shared_ptr<const FlatTrace> testing =
            suite.flatTestingTrace(workload);
        FlatCursor source(*testing);
        if (warmupBranches > 0) {
            SimOptions warmup = sim;
            warmup.maxConditionalBranches = warmupBranches;
            SimResult warm =
                simulateDispatch(source, *predictor, warmup);
            // State kept, counters discarded — unless the watchdog
            // fired mid-warmup, in which case the cell has no usable
            // result.
            if (warm.cancelled) {
                out.cancelled = true;
                return out;
            }
        }
        if (attributor)
            sim.attribution = &*attributor;
        result = simulateDispatch(source, *predictor, sim);
        if (result.cancelled) {
            out.cancelled = true;
            return out;
        }
    }
    if (attributor)
        out.attribution = attributor->snapshot();

#if TL_DCHECK_ENABLED
    // Between sweep cells the predictor's run-time tables must still
    // satisfy their structural invariants; a failure here points at
    // corruption or a library bug, never at the configuration.
    Status health = predictor->validate();
    TL_INVARIANT(health.ok(),
                 "predictor '%s' failed its self-check after %s: %s",
                 predictor->name().c_str(), workload.name().c_str(),
                 health.message().c_str());
#endif

    out.result = BenchmarkResult{workload.name(),
                                 workload.isInteger(), result};

    if (instrumented) {
        // Harvest into a cell-private registry; the caller merges
        // the snapshots in grid order so totals stay deterministic.
        MetricsRegistry cellMetrics;
        predictor->reportMetrics(cellMetrics);
        cellMetrics.add("sweep.cellsRun");
        if (streamed)
            cellMetrics.add("sweep.cellsStreamed");
        cellMetrics.add("sim.conditionalBranches",
                        result.conditionalBranches);
        cellMetrics.add("sim.correctPredictions", result.correct);
        cellMetrics.add("sim.takenBranches", result.taken);
        cellMetrics.add("sim.allBranches", result.allBranches);
        cellMetrics.add("sim.instructions", result.instructions);
        cellMetrics.add("sim.contextSwitches",
                        result.contextSwitchCount);
        out.metrics = cellMetrics.snapshot();
    }
    return out;
}

SweepRunner::CellOutcome
SweepRunner::runCell(const SweepSpec &column,
                     const Workload &workload) const
{
    CellExecution exec =
        runSweepCell(*suitePtr, runOptions, column, workload);
    return CellOutcome{std::move(exec.result),
                       std::move(exec.metrics),
                       std::move(exec.attribution)};
}

std::vector<ResultSet>
SweepRunner::run(const std::vector<SweepSpec> &columns)
{
    const std::vector<const Workload *> &workloads = allWorkloads();
    const std::size_t perColumn = workloads.size();
    const std::size_t cells = columns.size() * perColumn;

    if (runOptions.events) {
        runOptions.events->emit(
            "sweep.start",
            {EventField::u64("columns", columns.size()),
             EventField::u64("workloads", perColumn),
             EventField::u64("threads", runOptions.threads)});
    }

    profile = SweepProfile{};
    profile.threads = runOptions.threads;
    profile.cells.resize(cells);
    profile.workerBusySeconds.assign(runOptions.threads + 1, 0.0);

    const SweepClock::time_point sweepStart = SweepClock::now();
    ProgressMeter progressMeter(runOptions.progress,
                                runOptions.progressInterval,
                                sweepStart);

    // Each cell writes only its own slot, so the grid needs no lock;
    // assembling from the grid afterwards makes the output order a
    // function of the indices alone, not of thread scheduling. The
    // same holds for the profile: a cell's record and its worker's
    // busy-seconds slot are only ever touched by the thread running
    // that cell.
    std::vector<CellOutcome> grid(cells);
    auto compute = [&](std::size_t cell) {
        const SweepSpec &column = columns[cell / perColumn];
        const Workload &workload = *workloads[cell % perColumn];

        if (runOptions.events) {
            runOptions.events->emit(
                "cell.start",
                {EventField::str("column", column.displayName),
                 EventField::str("workload", workload.name())});
        }

        const SweepClock::time_point start = SweepClock::now();
        grid[cell] = runCell(column, workload);
        const SweepClock::time_point end = SweepClock::now();

        CellProfile &timing = profile.cells[cell];
        timing.column = column.displayName;
        timing.workload = workload.name();
        timing.worker = ThreadPool::currentWorkerIndex();
        timing.queueSeconds = elapsedSeconds(sweepStart, start);
        timing.wallSeconds = elapsedSeconds(start, end);
        timing.skipped = !grid[cell].result.has_value();
        profile.workerBusySeconds[timing.worker + 1] +=
            timing.wallSeconds;

        if (runOptions.events) {
            runOptions.events->emit(
                "cell.done",
                {EventField::str("column", column.displayName),
                 EventField::str("workload", workload.name()),
                 EventField::u64(
                     "worker",
                     static_cast<std::uint64_t>(timing.worker + 1)),
                 EventField::real("queueSeconds",
                                  timing.queueSeconds),
                 EventField::real("wallSeconds", timing.wallSeconds),
                 EventField::boolean("skipped", timing.skipped)});
        }

        progressMeter.tick(cells, end);
    };

    if (runOptions.threads == 0) {
        for (std::size_t cell = 0; cell < cells; ++cell)
            compute(cell);
    } else {
        ThreadPool pool(runOptions.threads);
        parallelFor(pool, cells, compute);
    }

    profile.wallSeconds =
        elapsedSeconds(sweepStart, SweepClock::now());

    // Deterministic harvest: fold the per-cell snapshots into the
    // shared registry in grid-index order, after the barrier. Counter
    // totals are then byte-identical for threads=0 and threads=N.
    if (runOptions.metrics) {
        for (const CellOutcome &cell : grid)
            runOptions.metrics->merge(cell.metrics);
    }

    // Same contract for provenance: per-scheme top-K tables and
    // taxonomy totals are folded cell by cell in grid-index order, so
    // the collector state is byte-identical for threads=0 and
    // threads=N. Skipped cells (no result) contribute nothing; they
    // have no branches to attribute.
    if (runOptions.attribution) {
        for (std::size_t cell = 0; cell < cells; ++cell) {
            const CellOutcome &outcome = grid[cell];
            if (!outcome.result)
                continue;
            const std::string &scheme =
                columns[cell / perColumn].displayName;
            if (outcome.attribution) {
                runOptions.attribution->add(scheme,
                                            *outcome.attribution);
            } else {
                runOptions.attribution->markMissing(scheme);
            }
        }
    }

    if (runOptions.events) {
        runOptions.events->emit(
            "sweep.done",
            {EventField::u64("cells", cells),
             EventField::real("wallSeconds", profile.wallSeconds),
             EventField::real("occupancy", profile.occupancy())});
    }

    std::vector<ResultSet> results;
    results.reserve(columns.size());
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
        ResultSet column(columns[ci].displayName);
        for (std::size_t wi = 0; wi < perColumn; ++wi) {
            if (const auto &cell = grid[ci * perColumn + wi].result)
                column.add(*cell);
        }
        results.push_back(std::move(column));
    }
    return results;
}

ResultSet
SweepRunner::run(const SweepSpec &column)
{
    return run(std::vector<SweepSpec>{column}).front();
}

ResultSet
SweepRunner::run(std::string_view specText)
{
    return run(sweepSpec(specText));
}

ResultSet
runSuite(const std::string &displayName, const PredictorFactory &make,
         WorkloadSuite &suite, const RunOptions &options)
{
    SweepSpec column;
    column.displayName = displayName;
    column.make = make;
    SweepRunner runner(suite, options);
    return runner.run(column);
}

ResultSet
runSuite(const std::string &specText, WorkloadSuite &suite,
         const RunOptions &options)
{
    SweepRunner runner(suite, options);
    return runner.run(sweepSpec(specText));
}

} // namespace tl
