#include "sim/sweep.hh"

#include "util/check.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace tl
{

SweepSpec
sweepSpec(const SchemeSpec &spec)
{
    SweepSpec column;
    column.displayName = spec.toString();
    column.contextSwitches = spec.contextSwitch;
    column.make = factoryFromSpec(spec);
    return column;
}

SweepSpec
sweepSpec(std::string_view specText)
{
    return sweepSpec(SchemeSpec::parse(specText));
}

SweepRunner::SweepRunner(RunOptions options)
    : runOptions(options),
      ownedSuite(std::make_unique<WorkloadSuite>(options.branchBudget)),
      suitePtr(ownedSuite.get())
{
    if (runOptions.warmupFraction < 0.0 ||
        runOptions.warmupFraction >= 1.0) {
        fatal("RunOptions::warmupFraction must be in [0, 1), got %g",
              runOptions.warmupFraction);
    }
}

SweepRunner::SweepRunner(WorkloadSuite &suite, RunOptions options)
    : runOptions(options), suitePtr(&suite)
{
    if (runOptions.warmupFraction < 0.0 ||
        runOptions.warmupFraction >= 1.0) {
        fatal("RunOptions::warmupFraction must be in [0, 1), got %g",
              runOptions.warmupFraction);
    }
}

std::optional<BenchmarkResult>
SweepRunner::runCell(const SweepSpec &column,
                     const Workload &workload) const
{
    std::unique_ptr<BranchPredictor> predictor = column.make();

    if (predictor->needsTraining()) {
        StatusOr<std::shared_ptr<const Trace>> training =
            suitePtr->tryTraining(workload);
        if (!training.ok())
            return std::nullopt; // omitted point, as in Fig. 11
        TraceReplaySource source(**training);
        predictor->train(source);
    }

    SimOptions sim;
    sim.contextSwitches =
        runOptions.contextSwitches || column.contextSwitches;
    sim.contextSwitchInterval = runOptions.contextSwitchInterval;
    sim.switchOnTrap = runOptions.switchOnTrap;

    std::shared_ptr<const Trace> testing =
        suitePtr->testingTrace(workload);
    TraceReplaySource source(*testing);
    if (runOptions.warmupFraction > 0.0) {
        SimOptions warmup = sim;
        warmup.maxConditionalBranches = static_cast<std::uint64_t>(
            runOptions.warmupFraction *
            static_cast<double>(suitePtr->condBranches()));
        simulate(source, *predictor, warmup); // state kept, counters
                                              // discarded
    }
    SimResult result = simulate(source, *predictor, sim);

#if TL_DCHECK_ENABLED
    // Between sweep cells the predictor's run-time tables must still
    // satisfy their structural invariants; a failure here points at
    // corruption or a library bug, never at the configuration.
    Status health = predictor->validate();
    TL_INVARIANT(health.ok(),
                 "predictor '%s' failed its self-check after %s: %s",
                 predictor->name().c_str(), workload.name().c_str(),
                 health.message().c_str());
#endif

    return BenchmarkResult{workload.name(), workload.isInteger(),
                           result};
}

std::vector<ResultSet>
SweepRunner::run(const std::vector<SweepSpec> &columns)
{
    const std::vector<const Workload *> &workloads = allWorkloads();
    const std::size_t perColumn = workloads.size();
    const std::size_t cells = columns.size() * perColumn;

    // Each cell writes only its own slot, so the grid needs no lock;
    // assembling from the grid afterwards makes the output order a
    // function of the indices alone, not of thread scheduling.
    std::vector<std::optional<BenchmarkResult>> grid(cells);
    auto compute = [&](std::size_t cell) {
        grid[cell] = runCell(columns[cell / perColumn],
                             *workloads[cell % perColumn]);
    };

    if (runOptions.threads == 0) {
        for (std::size_t cell = 0; cell < cells; ++cell)
            compute(cell);
    } else {
        ThreadPool pool(runOptions.threads);
        parallelFor(pool, cells, compute);
    }

    std::vector<ResultSet> results;
    results.reserve(columns.size());
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
        ResultSet column(columns[ci].displayName);
        for (std::size_t wi = 0; wi < perColumn; ++wi) {
            if (const auto &cell = grid[ci * perColumn + wi])
                column.add(*cell);
        }
        results.push_back(std::move(column));
    }
    return results;
}

ResultSet
SweepRunner::run(const SweepSpec &column)
{
    return run(std::vector<SweepSpec>{column}).front();
}

ResultSet
SweepRunner::run(std::string_view specText)
{
    return run(sweepSpec(specText));
}

ResultSet
runSuite(const std::string &displayName, const PredictorFactory &make,
         WorkloadSuite &suite, const RunOptions &options)
{
    SweepSpec column;
    column.displayName = displayName;
    column.make = make;
    SweepRunner runner(suite, options);
    return runner.run(column);
}

ResultSet
runSuite(const std::string &specText, WorkloadSuite &suite,
         const RunOptions &options)
{
    SweepRunner runner(suite, options);
    return runner.run(sweepSpec(specText));
}

} // namespace tl
