/**
 * @file
 * Fetch-redirect simulation (the paper's Section 3.2 consequences).
 *
 * A direction prediction alone does not steer fetch: when a branch is
 * predicted taken, the target must come from the target cache. This
 * engine classifies every branch into:
 *
 *  - correct fetch: direction predicted correctly, and (if the path
 *    taken required a target) the cached target matched;
 *  - misfetch: the direction was right but the target was missing or
 *    stale — fetch stalls for the target-generation bubble;
 *  - mispredict: the direction was wrong — the speculative work after
 *    the branch is squashed.
 *
 * Non-conditional branches (calls, unconditional jumps, indirect
 * jumps) always "go" and only need a target; returns are counted as
 * target misses unless the cached target happens to match (the
 * paper's cited Kaeli/Emma problem of moving-target returns).
 *
 * Like simulate() (sim/engine.hh), the entry point is two-tier: a
 * concept-constrained template instantiates the loop with direct
 * calls for concrete source/predictor types, and a non-template shim
 * over the abstract interfaces keeps type-erased callers working.
 */

#ifndef TL_SIM_FETCH_HH
#define TL_SIM_FETCH_HH

#include <cstdint>
#include <optional>

#include "isa/isa.hh"
#include "predictor/concepts.hh"
#include "predictor/indirect.hh"
#include "predictor/predictor.hh"
#include "predictor/return_stack.hh"
#include "predictor/target_cache.hh"
#include "trace/trace.hh"

namespace tl
{

/** Outcome counters of a fetch simulation. */
struct FetchResult
{
    std::uint64_t branches = 0;       //!< all branch records
    std::uint64_t correctFetch = 0;   //!< fetch steered correctly
    std::uint64_t misfetches = 0;     //!< right direction, no target
    std::uint64_t mispredicts = 0;    //!< wrong direction

    double
    correctPercent() const
    {
        return branches ? 100.0 * double(correctFetch) /
                              double(branches)
                        : 0.0;
    }

    double
    misfetchPercent() const
    {
        return branches
                   ? 100.0 * double(misfetches) / double(branches)
                   : 0.0;
    }

    double
    mispredictPercent() const
    {
        return branches
                   ? 100.0 * double(mispredicts) / double(branches)
                   : 0.0;
    }
};

namespace detail
{

/** The fetch loop, generic over the source and direction predictor. */
template <typename S, typename P>
FetchResult
fetchLoop(S &source, P &direction, TargetCache &targets,
          ReturnStack *returnStack, IndirectTargetPredictor *indirect)
{
    FetchResult result;
    BranchRecord record;
    while (source.next(record)) {
        ++result.branches;

        bool predicted_taken = true;
        if (record.isConditional()) {
            BranchQuery query = BranchQuery::fromRecord(record);
            predicted_taken = direction.predict(query);
            direction.update(query, record.taken);
            if (indirect)
                indirect->observeDirection(record.taken);
        }

        if (returnStack && record.cls == BranchClass::Call) {
            // Hardware pushes the fall-through address at call time.
            returnStack->pushCall(record.pc + isa::instBytes);
        }

        if (predicted_taken != record.taken) {
            ++result.mispredicts;
            targets.update(record.pc, record.target);
            continue;
        }

        if (!record.taken) {
            // Fall-through: the sequential fetch was correct; no
            // target needed.
            ++result.correctFetch;
            continue;
        }

        std::optional<std::uint64_t> predicted_target;
        if (returnStack && record.cls == BranchClass::Return)
            predicted_target = returnStack->popReturn();
        if (indirect && record.cls == BranchClass::Indirect)
            predicted_target = indirect->lookup(record.pc);
        if (!predicted_target)
            predicted_target = targets.lookup(record.pc);

        if (predicted_target && *predicted_target == record.target)
            ++result.correctFetch;
        else
            ++result.misfetches;
        if (indirect && record.cls == BranchClass::Indirect)
            indirect->update(record.pc, record.target);
        targets.update(record.pc, record.target);
    }
    return result;
}

} // namespace detail

/**
 * Drive @p source through a direction predictor plus target cache
 * (template tier; the non-template overload below shims the same loop
 * for abstract-interface callers).
 *
 * The direction predictor handles conditional branches only; other
 * classes are always taken and judged purely on target availability.
 *
 * @param returnStack When non-null, return targets are predicted from
 *        the stack (calls push their fall-through address) instead of
 *        the target cache — the Kaeli/Emma fix for moving-target
 *        returns. On stack underflow the target cache is consulted as
 *        a fallback.
 * @param indirect When non-null, indirect-jump targets are predicted
 *        from the history-indexed table instead of the target cache —
 *        the two-level idea applied to jump-table dispatch.
 */
template <concepts::TraceSource S, concepts::Predictor P>
FetchResult
simulateFetch(S &source, P &direction, TargetCache &targets,
              ReturnStack *returnStack = nullptr,
              IndirectTargetPredictor *indirect = nullptr)
{
    return detail::fetchLoop(source, direction, targets, returnStack,
                             indirect);
}

/** Template-tier convenience overload for in-memory traces. */
template <concepts::Predictor P>
FetchResult
simulateFetch(const Trace &trace, P &direction, TargetCache &targets,
              ReturnStack *returnStack = nullptr,
              IndirectTargetPredictor *indirect = nullptr)
{
    TraceReplaySource source(trace);
    return detail::fetchLoop(source, direction, targets, returnStack,
                             indirect);
}

/** Virtual tier: type-erased shim over the same loop. */
FetchResult simulateFetch(TraceSource &source,
                          BranchPredictor &direction,
                          TargetCache &targets,
                          ReturnStack *returnStack = nullptr,
                          IndirectTargetPredictor *indirect = nullptr);

/** Virtual-tier convenience overload for in-memory traces. */
FetchResult simulateFetch(const Trace &trace,
                          BranchPredictor &direction,
                          TargetCache &targets,
                          ReturnStack *returnStack = nullptr,
                          IndirectTargetPredictor *indirect = nullptr);

} // namespace tl

#endif // TL_SIM_FETCH_HH
