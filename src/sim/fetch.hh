/**
 * @file
 * Fetch-redirect simulation (the paper's Section 3.2 consequences).
 *
 * A direction prediction alone does not steer fetch: when a branch is
 * predicted taken, the target must come from the target cache. This
 * engine classifies every branch into:
 *
 *  - correct fetch: direction predicted correctly, and (if the path
 *    taken required a target) the cached target matched;
 *  - misfetch: the direction was right but the target was missing or
 *    stale — fetch stalls for the target-generation bubble;
 *  - mispredict: the direction was wrong — the speculative work after
 *    the branch is squashed.
 *
 * Non-conditional branches (calls, unconditional jumps, indirect
 * jumps) always "go" and only need a target; returns are counted as
 * target misses unless the cached target happens to match (the
 * paper's cited Kaeli/Emma problem of moving-target returns).
 */

#ifndef TL_SIM_FETCH_HH
#define TL_SIM_FETCH_HH

#include <cstdint>

#include "predictor/predictor.hh"
#include "predictor/target_cache.hh"
#include "trace/trace.hh"

namespace tl
{

/** Outcome counters of a fetch simulation. */
struct FetchResult
{
    std::uint64_t branches = 0;       //!< all branch records
    std::uint64_t correctFetch = 0;   //!< fetch steered correctly
    std::uint64_t misfetches = 0;     //!< right direction, no target
    std::uint64_t mispredicts = 0;    //!< wrong direction

    double
    correctPercent() const
    {
        return branches ? 100.0 * double(correctFetch) /
                              double(branches)
                        : 0.0;
    }

    double
    misfetchPercent() const
    {
        return branches
                   ? 100.0 * double(misfetches) / double(branches)
                   : 0.0;
    }

    double
    mispredictPercent() const
    {
        return branches
                   ? 100.0 * double(mispredicts) / double(branches)
                   : 0.0;
    }
};

class ReturnStack;
class IndirectTargetPredictor;

/**
 * Drive @p source through a direction predictor plus target cache.
 *
 * The direction predictor handles conditional branches only; other
 * classes are always taken and judged purely on target availability.
 *
 * @param returnStack When non-null, return targets are predicted from
 *        the stack (calls push their fall-through address) instead of
 *        the target cache — the Kaeli/Emma fix for moving-target
 *        returns. On stack underflow the target cache is consulted as
 *        a fallback.
 * @param indirect When non-null, indirect-jump targets are predicted
 *        from the history-indexed table instead of the target cache —
 *        the two-level idea applied to jump-table dispatch.
 */
FetchResult simulateFetch(TraceSource &source,
                          BranchPredictor &direction,
                          TargetCache &targets,
                          ReturnStack *returnStack = nullptr,
                          IndirectTargetPredictor *indirect = nullptr);

/** Convenience overload for in-memory traces. */
FetchResult simulateFetch(const Trace &trace,
                          BranchPredictor &direction,
                          TargetCache &targets,
                          ReturnStack *returnStack = nullptr,
                          IndirectTargetPredictor *indirect = nullptr);

} // namespace tl

#endif // TL_SIM_FETCH_HH
