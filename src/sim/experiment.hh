/**
 * @file
 * Experiment plumbing shared by the bench binaries: cached workload
 * traces (the paper replays fixed trace files across predictor
 * configurations) and helpers that run one scheme over the whole
 * nine-benchmark suite.
 *
 * The conditional-branch budget per benchmark defaults to a
 * laptop-friendly value and can be overridden with the environment
 * variable TL_BENCH_BRANCHES (the paper uses 20 million).
 */

#ifndef TL_SIM_EXPERIMENT_HH
#define TL_SIM_EXPERIMENT_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/metrics.hh"
#include "workloads/registry.hh"

namespace tl
{

/** Branch budget per benchmark: TL_BENCH_BRANCHES or 200000. */
std::uint64_t defaultBranchBudget();

/** Lazily generated, cached traces for the nine-benchmark suite. */
class WorkloadSuite
{
  public:
    explicit WorkloadSuite(std::uint64_t condBranches = 0);

    /** Conditional branches captured per benchmark. */
    std::uint64_t condBranches() const { return budget; }

    /** The testing-dataset trace of @p workload (cached). */
    const Trace &testing(const Workload &workload);

    /**
     * The training-dataset trace of @p workload (cached); calls
     * fatal() for benchmarks whose Table 2 entry is NA.
     */
    const Trace &training(const Workload &workload);

  private:
    std::uint64_t budget;
    std::map<std::string, Trace> testingTraces;
    std::map<std::string, Trace> trainingTraces;
};

/** A factory producing a fresh predictor per benchmark. */
using PredictorFactory =
    std::function<std::unique_ptr<BranchPredictor>()>;

/**
 * Run one scheme over every benchmark in the suite.
 *
 * A fresh predictor is built per benchmark. Schemes that need
 * training are trained on the benchmark's training trace; benchmarks
 * without a training dataset are skipped for such schemes, exactly as
 * the paper omits those data points in Figure 11.
 *
 * @param displayName Column label in reports.
 * @param make Fresh-predictor factory.
 * @param suite Trace cache.
 * @param options Simulation options (context switches etc.).
 */
ResultSet runOnSuite(const std::string &displayName,
                     const PredictorFactory &make, WorkloadSuite &suite,
                     const SimOptions &options = {});

/**
 * Convenience overload: build predictors from a Table-3 style spec
 * string; the spec's ",c" flag turns on context-switch simulation.
 */
ResultSet runOnSuite(const std::string &specText, WorkloadSuite &suite,
                     SimOptions options = {});

} // namespace tl

#endif // TL_SIM_EXPERIMENT_HH
