/**
 * @file
 * Experiment plumbing shared by the bench binaries: cached workload
 * traces (the paper replays fixed trace files across predictor
 * configurations) and helpers that run one scheme over the whole
 * nine-benchmark suite.
 *
 * WorkloadSuite is thread-safe: traces are generated once, cached
 * behind a mutex, and handed out as std::shared_ptr<const Trace>, so
 * a parallel sweep (sim/sweep.hh) can share one suite across worker
 * threads. Two threads asking for different workloads generate them
 * concurrently; two threads asking for the same workload generate it
 * once (the second blocks until the first finishes).
 *
 * The conditional-branch budget per benchmark defaults to a
 * laptop-friendly value and can be overridden with the environment
 * variable TL_BENCH_BRANCHES (the paper uses 20 million). The
 * variable is read once, at the first defaultBranchBudget() call;
 * later environment changes are ignored. Prefer routing an explicit
 * budget through RunOptions::branchBudget (sim/sweep.hh).
 */

#ifndef TL_SIM_EXPERIMENT_HH
#define TL_SIM_EXPERIMENT_HH

#include <future>
#include <map>
#include <memory>
#include <string>

#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/metrics.hh"
#include "trace/chunked.hh"
#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/status_or.hh"
#include "workloads/registry.hh"

namespace tl
{

/**
 * Branch budget per benchmark: TL_BENCH_BRANCHES or 200000. The
 * environment is consulted once; the value is cached for the life of
 * the process.
 */
std::uint64_t defaultBranchBudget();

/**
 * How a WorkloadSuite handles traces too large to materialize: when
 * streaming is in effect, each workload's testing trace is captured
 * once into a chunked v3 spill file (trace/chunked.hh) and simulation
 * cells stream it window by window under a fixed memory budget
 * instead of sharing an in-RAM Trace.
 */
struct TraceStreamingOptions
{
    /** Stream regardless of budget. */
    bool enabled = false;

    /**
     * Stream automatically when the suite's conditional-branch budget
     * reaches this many branches (0 = never auto-stream). The default
     * keeps the historical in-RAM path for laptop-sized budgets and
     * switches to spill files near paper scale.
     */
    std::uint64_t autoThreshold = 2000000;

    /** Directory for v3 spill files (created on first use). */
    std::string spillDir = "tl-spill";

    /** Records per spill chunk. */
    std::uint32_t chunkRecords = defaultChunkRecords;
};

/**
 * Process-wide streaming defaults, read once from the environment:
 * TL_STREAM_TRACES (1 forces streaming, 0 disables auto-streaming),
 * TL_STREAM_THRESHOLD (auto-stream budget), TL_SPILL_DIR and
 * TL_CHUNK_RECORDS. Prefer WorkloadSuite::setStreaming() for an
 * explicit, environment-independent configuration (tests).
 */
const TraceStreamingOptions &defaultTraceStreaming();

/**
 * Lazily generated, cached traces for the nine-benchmark suite.
 * Thread-safe; see the file comment.
 */
class WorkloadSuite
{
  public:
    explicit WorkloadSuite(std::uint64_t condBranches = 0);

    /** Conditional branches captured per benchmark. */
    std::uint64_t condBranches() const { return budget; }

    /** The testing-dataset trace of @p workload (cached, shared). */
    std::shared_ptr<const Trace> testingTrace(const Workload &workload);

    /**
     * The testing trace transposed into structure-of-arrays columns
     * (trace/flat.hh) for the engine's FlatCursor fast path. Cached
     * and shared like testingTrace(); built from the same cached
     * Trace, so both views describe identical records.
     */
    std::shared_ptr<const FlatTrace>
    flatTestingTrace(const Workload &workload);

    /**
     * The training-dataset trace of @p workload (cached, shared);
     * fails with StatusCode::FailedPrecondition for benchmarks whose
     * Table 2 entry is NA instead of calling fatal().
     */
    StatusOr<std::shared_ptr<const Trace>>
    tryTraining(const Workload &workload);

    /**
     * @name Reference-returning shims (pre-sweep API)
     * The references stay valid for the suite's lifetime (the cache
     * never evicts). training() calls fatal() for NA benchmarks; new
     * code should use tryTraining().
     */
    /// @{
    const Trace &testing(const Workload &workload);
    const Trace &training(const Workload &workload);
    /// @}

    /**
     * @name Streaming (trace format v3 spill files)
     * At paper-scale budgets a materialized trace is hundreds of
     * megabytes per benchmark; the streaming path instead captures
     * each testing trace once into a chunked v3 spill file and lets
     * simulation cells stream private mmap windows of it.
     */
    /// @{

    /**
     * Override the streaming configuration (defaultTraceStreaming()
     * otherwise). Call before the first trace request; not guarded
     * against concurrent trace generation.
     */
    void setStreaming(const TraceStreamingOptions &options);

    /** The active streaming configuration. */
    const TraceStreamingOptions &streaming() const
    {
        return streamingOptions;
    }

    /** True when testing traces should stream from spill files. */
    bool streamingTesting() const;

    /**
     * Path of the v3 spill file holding @p workload's testing trace,
     * capturing it on first use (cached and shared like
     * testingTrace(); concurrent callers block on one producer). The
     * file is keyed by workload, budget and chunk size, so a valid
     * spill left by an earlier process — a resumed sweep — is reused
     * rather than recaptured.
     */
    StatusOr<std::string> streamTestingPath(const Workload &workload);

    /**
     * Streaming training source for @p workload (no spill file:
     * training runs are single-pass, so the capped live capture is
     * already memory-bounded); fails with
     * StatusCode::FailedPrecondition for NA benchmarks.
     */
    StatusOr<std::unique_ptr<TraceSource>>
    streamTraining(const Workload &workload) const;
    /// @}

  private:
    /** One cache slot: ready when the producing thread finished. */
    using Entry = std::shared_future<std::shared_ptr<const Trace>>;
    using FlatEntry =
        std::shared_future<std::shared_ptr<const FlatTrace>>;
    using SpillEntry = std::shared_future<StatusOr<std::string>>;

    std::shared_ptr<const Trace>
    cached(std::map<std::string, Entry> &cache,
           const Workload &workload, bool wantTraining);

    /** Capture (or validate and reuse) one spill file. */
    StatusOr<std::string> captureSpill(const Workload &workload) const;

    std::uint64_t budget;
    TraceStreamingOptions streamingOptions;

    /**
     * Guards the cache *maps*; the traces themselves are immutable
     * once published through the shared_future, so readers holding
     * an Entry need no lock.
     */
    Mutex mutex;
    std::map<std::string, Entry> testingTraces TL_GUARDED_BY(mutex);
    std::map<std::string, Entry> trainingTraces TL_GUARDED_BY(mutex);
    std::map<std::string, FlatEntry> flatTestingTraces
        TL_GUARDED_BY(mutex);
    std::map<std::string, SpillEntry> spillPaths TL_GUARDED_BY(mutex);
};

} // namespace tl

#endif // TL_SIM_EXPERIMENT_HH
