/**
 * @file
 * Experiment plumbing shared by the bench binaries: cached workload
 * traces (the paper replays fixed trace files across predictor
 * configurations) and helpers that run one scheme over the whole
 * nine-benchmark suite.
 *
 * WorkloadSuite is thread-safe: traces are generated once, cached
 * behind a mutex, and handed out as std::shared_ptr<const Trace>, so
 * a parallel sweep (sim/sweep.hh) can share one suite across worker
 * threads. Two threads asking for different workloads generate them
 * concurrently; two threads asking for the same workload generate it
 * once (the second blocks until the first finishes).
 *
 * The conditional-branch budget per benchmark defaults to a
 * laptop-friendly value and can be overridden with the environment
 * variable TL_BENCH_BRANCHES (the paper uses 20 million). The
 * variable is read once, at the first defaultBranchBudget() call;
 * later environment changes are ignored. Prefer routing an explicit
 * budget through RunOptions::branchBudget (sim/sweep.hh).
 */

#ifndef TL_SIM_EXPERIMENT_HH
#define TL_SIM_EXPERIMENT_HH

#include <future>
#include <map>
#include <memory>
#include <string>

#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "sim/metrics.hh"
#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/status_or.hh"
#include "workloads/registry.hh"

namespace tl
{

/**
 * Branch budget per benchmark: TL_BENCH_BRANCHES or 200000. The
 * environment is consulted once; the value is cached for the life of
 * the process.
 */
std::uint64_t defaultBranchBudget();

/**
 * Lazily generated, cached traces for the nine-benchmark suite.
 * Thread-safe; see the file comment.
 */
class WorkloadSuite
{
  public:
    explicit WorkloadSuite(std::uint64_t condBranches = 0);

    /** Conditional branches captured per benchmark. */
    std::uint64_t condBranches() const { return budget; }

    /** The testing-dataset trace of @p workload (cached, shared). */
    std::shared_ptr<const Trace> testingTrace(const Workload &workload);

    /**
     * The testing trace transposed into structure-of-arrays columns
     * (trace/flat.hh) for the engine's FlatCursor fast path. Cached
     * and shared like testingTrace(); built from the same cached
     * Trace, so both views describe identical records.
     */
    std::shared_ptr<const FlatTrace>
    flatTestingTrace(const Workload &workload);

    /**
     * The training-dataset trace of @p workload (cached, shared);
     * fails with StatusCode::FailedPrecondition for benchmarks whose
     * Table 2 entry is NA instead of calling fatal().
     */
    StatusOr<std::shared_ptr<const Trace>>
    tryTraining(const Workload &workload);

    /**
     * @name Reference-returning shims (pre-sweep API)
     * The references stay valid for the suite's lifetime (the cache
     * never evicts). training() calls fatal() for NA benchmarks; new
     * code should use tryTraining().
     */
    /// @{
    const Trace &testing(const Workload &workload);
    const Trace &training(const Workload &workload);
    /// @}

  private:
    /** One cache slot: ready when the producing thread finished. */
    using Entry = std::shared_future<std::shared_ptr<const Trace>>;
    using FlatEntry =
        std::shared_future<std::shared_ptr<const FlatTrace>>;

    std::shared_ptr<const Trace>
    cached(std::map<std::string, Entry> &cache,
           const Workload &workload, bool wantTraining);

    std::uint64_t budget;

    /**
     * Guards the cache *maps*; the traces themselves are immutable
     * once published through the shared_future, so readers holding
     * an Entry need no lock.
     */
    Mutex mutex;
    std::map<std::string, Entry> testingTraces TL_GUARDED_BY(mutex);
    std::map<std::string, Entry> trainingTraces TL_GUARDED_BY(mutex);
    std::map<std::string, FlatEntry> flatTestingTraces
        TL_GUARDED_BY(mutex);
};

} // namespace tl

#endif // TL_SIM_EXPERIMENT_HH
