/**
 * @file
 * Fault-tolerant sweep supervision: SweepRunner's grid semantics plus
 * the survival machinery long paper-scale runs need.
 *
 * A SweepSupervisor runs the same deterministic (column x workload)
 * grid as SweepRunner (sim/sweep.hh), but wraps every cell in a
 * supervision loop:
 *
 *  - checkpoint/resume — each finished cell is journaled to
 *    CHECKPOINT_<name>.jsonl (sim/checkpoint.hh); with Config::resume
 *    a restart restores journaled cells instead of recomputing them,
 *    and because cell ordering is deterministic the resumed ResultSet
 *    is byte-identical to an uninterrupted run's;
 *  - deadlines — RunOptions::cellDeadline arms a watchdog thread that
 *    cancels an overdue cell cooperatively (the simulate() loop polls
 *    SimOptions::cancelToken) and reports it timed-out while the rest
 *    of the grid completes;
 *  - bounded retry — a cell failing with a retryable Status
 *    (isRetryable in util/status_or.hh) is re-run up to
 *    RunOptions::maxCellAttempts times with exponential backoff;
 *  - graceful degradation — failed, timed-out and retry-exhausted
 *    cells never abort the sweep: they are reported per cell in
 *    SupervisedSweep (and manifest schemaVersion 2 via
 *    RunManifest::recordSupervision), gmeans cover the survivors,
 *    and SupervisedSweep::degraded flags the loss;
 *  - crash isolation — around worker execution a signal-safe handler
 *    writes CRASH_<name>.json naming the in-flight cells and the
 *    checkpoint to resume from, so even a SIGSEGV'd run is resumable.
 *
 * Failure *classification* is deterministic under the fixed-seed
 * regime (the chaos tests in tests/test_supervisor.cc inject faults
 * through a FaultPlan and assert exact outcomes); wall times and the
 * watchdog's firing moment are observational, like SweepProfile.
 */

#ifndef TL_SIM_SUPERVISOR_HH
#define TL_SIM_SUPERVISOR_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/sweep.hh"

namespace tl
{

/** What happened to one supervised cell, in grid order. */
struct CellReport
{
    std::string column;   //!< column display name
    std::string workload; //!< benchmark name
    CellState state = CellState::Ok;
    std::uint32_t attempts = 1; //!< attempts consumed incl. the last
    std::uint64_t wallMs = 0;   //!< wall ms of the final attempt
    bool restored = false;      //!< satisfied from the checkpoint
    Status error; //!< last failure (OK for ok; NA reason for skipped)
};

/** Everything a supervised sweep produced. */
struct SupervisedSweep
{
    /**
     * One ResultSet per column, in column order, built from the
     * surviving (ok) cells — the same shape SweepRunner::run()
     * returns, so manifest/report plumbing is unchanged.
     */
    std::vector<ResultSet> results;

    /** Per-cell dispositions, grid (column-major cell) order. */
    std::vector<CellReport> cells;

    /** Wall-clock profile (restored cells appear with zero time). */
    SweepProfile profile;

    /** At least one cell timed out or failed; gmeans are partial. */
    bool degraded = false;

    /** Cells satisfied from the checkpoint instead of recomputed. */
    std::size_t restoredCells = 0;
};

/**
 * Chaos-injection hook, called at the top of every cell attempt.
 * Returning a non-OK Status makes the attempt fail with that status;
 * the hook may also block on @p cancel to simulate a hang (the
 * watchdog sets it) or throw to simulate an escaping bug. Production
 * runs leave it unset; tests/test_supervisor.cc drives every
 * supervision path through it deterministically.
 */
using CellFaultHook = std::function<Status(
    std::size_t cell, std::uint32_t attempt,
    const std::atomic<bool> &cancel)>;

/**
 * Streaming observation hook, called after each consumed trace window
 * of a streamed cell — *after* the chunk cursor has been journaled,
 * so a test that kills the process from inside the hook knows the
 * progress record for (cell, window) is already flushed. Production
 * runs leave it unset; the mid-chunk kill-and-resume death test in
 * tests/test_supervisor.cc raises SIGKILL from it.
 */
using WindowHook =
    std::function<void(std::size_t cell, std::uint64_t window)>;

/** Fault species a FaultPlan can schedule (cf. trace/faults.hh). */
enum class CellFaultKind : std::uint8_t
{
    RetryableFailure, //!< fail with a retryable Status (Unavailable)
    PermanentFailure, //!< fail with a permanent Status (CorruptData)
    Throw,            //!< throw std::runtime_error out of the cell
    Hang,             //!< block until the watchdog cancels the cell
};

/**
 * A deterministic schedule of cell faults — the supervisor-level
 * analogue of trace/faults.hh's byte-level injectFault(). Faults are
 * keyed by grid cell index; each fires on the first @p failAttempts
 * attempts of its cell (kAlways = every attempt), so
 * "fail twice, then succeed" is fault(cell, RetryableFailure, 2).
 */
class FaultPlan
{
  public:
    /** Fire on every attempt. */
    static constexpr std::uint32_t kAlways = ~std::uint32_t(0);

    /** Schedule @p kind for @p cell's first @p failAttempts attempts. */
    FaultPlan &fault(std::size_t cell, CellFaultKind kind,
                     std::uint32_t failAttempts = kAlways);

    /** The hook enacting this plan; copyable, shares no state. */
    [[nodiscard]] CellFaultHook hook() const;

  private:
    struct Entry
    {
        std::size_t cell;
        CellFaultKind kind;
        std::uint32_t failAttempts;
    };

    std::vector<Entry> entries;
};

/**
 * Identity of a sweep request, folded to 32 bits: the column specs,
 * workload names, branch budget and the RunOptions that shape
 * results. A checkpoint whose header signature differs was written by
 * a different request and must not be resumed.
 */
[[nodiscard]] std::uint32_t gridSignature(
    const std::vector<SweepSpec> &columns,
    const std::vector<const Workload *> &workloads,
    std::uint64_t branchBudget, const RunOptions &options);

/** SweepRunner with checkpoints, deadlines, retries and isolation. */
class SweepSupervisor
{
  public:
    /** Supervision knobs; grid knobs stay in RunOptions. */
    struct Config
    {
        /** Run name: CHECKPOINT_<name>.jsonl, CRASH_<name>.json. */
        std::string name = "sweep";

        /** Directory for the checkpoint and crash files. */
        std::string directory = ".";

        /** Restore cells from an existing checkpoint before running. */
        bool resume = false;

        /** Journal finished cells (off = supervise without a file). */
        bool checkpoint = true;

        /** Install the signal-safe crash reporter around the run. */
        bool crashReports = true;
    };

    /** Own a suite (budget from options.branchBudget). */
    explicit SweepSupervisor(Config config, RunOptions options = {});

    /** Share @p suite (must outlive the supervisor). */
    SweepSupervisor(Config config, WorkloadSuite &suite,
                    RunOptions options = {});

    WorkloadSuite &suite() { return *suitePtr; }

    const RunOptions &options() const { return runOptions; }

    const Config &config() const { return supConfig; }

    /** "<directory>/CHECKPOINT_<name>.jsonl". */
    [[nodiscard]] std::string checkpointPath() const;

    /** "<directory>/CRASH_<name>.json". */
    [[nodiscard]] std::string crashReportPath() const;

    /** Install a chaos hook (tests); pass nullptr to clear. */
    void setFaultHook(CellFaultHook hook);

    /** Install a streaming window hook (tests); nullptr to clear. */
    void setWindowHook(WindowHook hook);

    /**
     * Run the grid under supervision. Unlike SweepRunner::run(), this
     * never throws for a cell-level problem: every disposition comes
     * back in SupervisedSweep::cells.
     */
    SupervisedSweep run(const std::vector<SweepSpec> &columns);

  private:
    Config supConfig;
    RunOptions runOptions;
    std::unique_ptr<WorkloadSuite> ownedSuite;
    WorkloadSuite *suitePtr;
    CellFaultHook faultHook;
    WindowHook windowHook;
};

} // namespace tl

#endif // TL_SIM_SUPERVISOR_HH
