#include "sim/fetch.hh"

#include "isa/isa.hh"
#include "predictor/indirect.hh"
#include "predictor/return_stack.hh"

namespace tl
{

FetchResult
simulateFetch(TraceSource &source, BranchPredictor &direction,
              TargetCache &targets, ReturnStack *returnStack,
              IndirectTargetPredictor *indirect)
{
    FetchResult result;
    BranchRecord record;
    while (source.next(record)) {
        ++result.branches;

        bool predicted_taken = true;
        if (record.isConditional()) {
            BranchQuery query = BranchQuery::fromRecord(record);
            predicted_taken = direction.predict(query);
            direction.update(query, record.taken);
            if (indirect)
                indirect->observeDirection(record.taken);
        }

        if (returnStack && record.cls == BranchClass::Call) {
            // Hardware pushes the fall-through address at call time.
            returnStack->pushCall(record.pc + isa::instBytes);
        }

        if (predicted_taken != record.taken) {
            ++result.mispredicts;
            targets.update(record.pc, record.target);
            continue;
        }

        if (!record.taken) {
            // Fall-through: the sequential fetch was correct; no
            // target needed.
            ++result.correctFetch;
            continue;
        }

        std::optional<std::uint64_t> predicted_target;
        if (returnStack && record.cls == BranchClass::Return)
            predicted_target = returnStack->popReturn();
        if (indirect && record.cls == BranchClass::Indirect)
            predicted_target = indirect->lookup(record.pc);
        if (!predicted_target)
            predicted_target = targets.lookup(record.pc);

        if (predicted_target && *predicted_target == record.target)
            ++result.correctFetch;
        else
            ++result.misfetches;
        if (indirect && record.cls == BranchClass::Indirect)
            indirect->update(record.pc, record.target);
        targets.update(record.pc, record.target);
    }
    return result;
}

FetchResult
simulateFetch(const Trace &trace, BranchPredictor &direction,
              TargetCache &targets, ReturnStack *returnStack,
              IndirectTargetPredictor *indirect)
{
    TraceReplaySource source(trace);
    return simulateFetch(source, direction, targets, returnStack,
                         indirect);
}

} // namespace tl
