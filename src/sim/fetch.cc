#include "sim/fetch.hh"

namespace tl
{

FetchResult
simulateFetch(TraceSource &source, BranchPredictor &direction,
              TargetCache &targets, ReturnStack *returnStack,
              IndirectTargetPredictor *indirect)
{
    return detail::fetchLoop(source, direction, targets, returnStack,
                             indirect);
}

FetchResult
simulateFetch(const Trace &trace, BranchPredictor &direction,
              TargetCache &targets, ReturnStack *returnStack,
              IndirectTargetPredictor *indirect)
{
    TraceReplaySource source(trace);
    return detail::fetchLoop(source, direction, targets, returnStack,
                             indirect);
}

} // namespace tl
