/**
 * @file
 * Figure/table rendering: the paper-style accuracy table with one
 * column per scheme, one row per benchmark, and the three geometric
 * mean rows ("Int GMean", "FP GMean", "Tot GMean") at the bottom.
 */

#ifndef TL_SIM_REPORT_HH
#define TL_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "util/table.hh"

namespace tl
{

/**
 * Build the accuracy table for a set of scheme columns. Benchmarks
 * appear in registry order; a scheme missing a benchmark (static
 * training without a training set) shows "-".
 */
TextTable accuracyTable(const std::vector<ResultSet> &columns);

/**
 * Print @p columns under @p title, and — when the TL_RESULTS_DIR
 * environment variable is set — also write "<dir>/<fileStem>.csv".
 */
void printReport(const std::string &title,
                 const std::vector<ResultSet> &columns,
                 const std::string &fileStem);

} // namespace tl

#endif // TL_SIM_REPORT_HH
