/**
 * @file
 * Figure/table rendering: the paper-style accuracy table with one
 * column per scheme, one row per benchmark, and the three geometric
 * mean rows ("Int GMean", "FP GMean", "Tot GMean") at the bottom.
 */

#ifndef TL_SIM_REPORT_HH
#define TL_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/manifest.hh"
#include "sim/metrics.hh"
#include "util/table.hh"

namespace tl
{

/**
 * Build the accuracy table for a set of scheme columns. Benchmarks
 * appear in registry order; a scheme missing a benchmark (static
 * training without a training set) shows "-".
 */
TextTable accuracyTable(const std::vector<ResultSet> &columns);

/**
 * The directory results should be written into (the TL_RESULTS_DIR
 * environment variable), or empty when none was requested. This is
 * the library's one blessed read of that variable; everything
 * downstream takes the directory as a parameter.
 */
std::string resultsDir();

/**
 * Print @p columns under @p title, and — when resultsDir() is set —
 * also write "<dir>/<fileStem>.csv" plus a run manifest
 * (sim/manifest.hh).
 *
 * @param manifest When non-null, @p columns are appended to it and
 *        it is written as "RUN_<manifest name>.json" — the way an
 *        instrumented binary attaches options, profile and metrics.
 *        When null, a plain results-only "RUN_<fileStem>.json" is
 *        emitted.
 */
void printReport(const std::string &title,
                 const std::vector<ResultSet> &columns,
                 const std::string &fileStem,
                 RunManifest *manifest = nullptr);

} // namespace tl

#endif // TL_SIM_REPORT_HH
