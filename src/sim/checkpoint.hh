/**
 * @file
 * Crash-safe sweep checkpoints: an append-only JSONL journal of
 * completed grid cells.
 *
 * The sweep supervisor (sim/supervisor.hh) appends one CRC32-protected
 * record per finished cell to CHECKPOINT_<name>.jsonl; after a crash
 * or kill, readCheckpointFile() salvages every intact record and the
 * supervisor restores those cells instead of recomputing them. Because
 * the grid ordering is deterministic (sim/sweep.hh), a resumed run
 * reassembles a ResultSet byte-identical to an uninterrupted one.
 *
 * File format — line 1 is a header record, every further line one
 * cell record or one streaming progress record; each line is a single
 * compact JSON object whose last field is the CRC-32 of the object
 * serialized *without* that field:
 *
 *   {"kind": "checkpoint-header", "name": ..., "signature": S,"crc":C}
 *   {"cell": 0, "state": "ok", ..., "instructions": N,"crc":C}
 *   {"kind": "progress", "cell": 3, "window": 7, ...,"crc":C}
 *
 * Progress records are the streaming path's chunk cursor: a
 * supervised cell that streams its trace journals one after every
 * consumed window, so a killed run shows exactly how far each
 * in-flight cell got. They are observability, not state transfer —
 * resume recomputes incomplete cells from the start, which is
 * deterministic, so the final manifest is byte-identical either way.
 * Within one cell the *last* progress record wins (the cursor moves
 * forward); cell records keep first-wins semantics as before.
 *
 * The reader is deliberately paranoid: it accepts only a valid prefix
 * of the journal. A torn or corrupt line (the tail of a crashed
 * write) and everything after it are dropped and counted, duplicate
 * cell indices keep the first record, and a bad header condemns the
 * whole file. util/json only serializes, so the strict single-line
 * parser the reader needs lives in checkpoint.cc; the fuzz target
 * tests/fuzz/fuzz_checkpoint.cc hammers it with garbage.
 */

#ifndef TL_SIM_CHECKPOINT_HH
#define TL_SIM_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hh"
#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/status_or.hh"

namespace tl
{

/** Terminal disposition of one supervised sweep cell. */
enum class CellState : std::uint8_t
{
    Ok,       //!< simulated to completion; result is valid
    Skipped,  //!< column omits this benchmark (Fig. 11 NA entry)
    TimedOut, //!< cancelled by the watchdog past cellDeadline
    Failed,   //!< permanent failure, or retries exhausted
};

/** Stable wire name ("ok", "timed-out", ...) of a cell state. */
[[nodiscard]] const char *cellStateName(CellState state);

/** Inverse of cellStateName(); error on an unknown name. */
[[nodiscard]] StatusOr<CellState> cellStateFromName(
    std::string_view name);

/** True for the states a checkpoint may restore on resume. */
[[nodiscard]] constexpr bool
cellStateRestorable(CellState state)
{
    return state == CellState::Ok || state == CellState::Skipped;
}

/**
 * Journal line 1: identifies the grid so a stale checkpoint (edited
 * columns, different budget) is rejected instead of resumed.
 */
struct CheckpointHeader
{
    std::string name;             //!< run name (manifest name)
    std::uint64_t columns = 0;    //!< grid columns
    std::uint64_t workloads = 0;  //!< workloads per column
    std::uint64_t branchBudget = 0; //!< suite branch budget
    std::uint32_t signature = 0;  //!< gridSignature() of the request

    bool operator==(const CheckpointHeader &other) const = default;
};

/** One journaled cell: identity, disposition, and counters. */
struct CheckpointCell
{
    std::uint64_t cell = 0; //!< grid index (column-major, sweep order)
    CellState state = CellState::Ok;
    std::string column;     //!< column display name (for humans/tools)
    std::string workload;   //!< benchmark name
    std::uint32_t attempts = 1; //!< attempts consumed incl. the last
    std::uint64_t wallMs = 0;   //!< wall milliseconds of the last attempt
    bool isInteger = false;     //!< workload class (ResultSet rebuild)
    SimResult result;           //!< zeros unless state == Ok

    bool operator==(const CheckpointCell &other) const = default;
};

/**
 * One streaming chunk cursor: how far a streamed cell's replay had
 * advanced when the record was journaled. See the file comment for
 * the resume semantics (observability; last record per cell wins).
 */
struct CheckpointProgress
{
    std::uint64_t cell = 0;    //!< grid index, as in CheckpointCell
    std::uint64_t window = 0;  //!< trace windows fully consumed
    std::uint64_t records = 0; //!< trace records consumed
    std::uint64_t conditionalBranches = 0; //!< of the current phase

    bool operator==(const CheckpointProgress &other) const = default;
};

/** Everything readCheckpoint() salvaged from a journal. */
struct Checkpoint
{
    CheckpointHeader header;

    /** Intact records in journal order, duplicates removed. */
    std::vector<CheckpointCell> cells;

    /**
     * Latest chunk cursor per streamed cell (last record wins);
     * cursors for cells that also have a terminal record are kept —
     * they describe the completed replay.
     */
    std::vector<CheckpointProgress> progress;

    /** Records dropped because their cell index was already seen. */
    std::size_t duplicateLines = 0;

    /** Torn/corrupt lines (and their successors) dropped. */
    std::size_t droppedLines = 0;

    /** The record for @p cell, or nullptr if not journaled. */
    [[nodiscard]] const CheckpointCell *find(std::uint64_t cell) const;

    /** The latest chunk cursor for @p cell, or nullptr. */
    [[nodiscard]] const CheckpointProgress *
    findProgress(std::uint64_t cell) const;
};

/// @name Record serialization (one line, no trailing newline)
/// @{
[[nodiscard]] std::string checkpointHeaderLine(
    const CheckpointHeader &header);
[[nodiscard]] std::string checkpointCellLine(const CheckpointCell &cell);
[[nodiscard]] std::string checkpointProgressLine(
    const CheckpointProgress &progress);
/// @}

/**
 * Parse a journal from raw bytes. Fails only when no valid header
 * line exists; torn cell records degrade to droppedLines instead.
 */
[[nodiscard]] StatusOr<Checkpoint> readCheckpoint(
    std::string_view bytes);

/** readCheckpoint() over a file's contents; IoError if unreadable. */
[[nodiscard]] StatusOr<Checkpoint> readCheckpointFile(
    const std::string &path);

/**
 * Append-side of the journal. open() truncates and writes the header;
 * append() writes one cell record and flushes so the line is in the
 * OS page cache before the supervisor moves on — a kill -9 loses at
 * most the cell in flight, never a completed one.
 *
 * Thread-safe: append() from concurrent sweep workers is serialized
 * internally, so whole journal lines never interleave. append() on a
 * writer another thread just closed degrades to FailedPrecondition.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Truncate @p path and journal @p header. */
    Status open(const std::string &path,
                const CheckpointHeader &header) TL_EXCLUDES(mutex);

    /** Journal one cell; flushed before returning. */
    Status append(const CheckpointCell &cell) TL_EXCLUDES(mutex);

    /** Journal one streaming chunk cursor; flushed before returning. */
    Status append(const CheckpointProgress &progress)
        TL_EXCLUDES(mutex);

    [[nodiscard]] bool
    isOpen() const TL_EXCLUDES(mutex)
    {
        MutexLock lock(mutex);
        return stream != nullptr;
    }

    void close() TL_EXCLUDES(mutex);

  private:
    /** close() body for callers already holding the lock. */
    void closeLocked() TL_REQUIRES(mutex);

    mutable Mutex mutex;
    std::FILE *stream TL_GUARDED_BY(mutex) = nullptr;
};

} // namespace tl

#endif // TL_SIM_CHECKPOINT_HH
