#include "sim/supervisor.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>
#include <thread> // tl-lint: allow(thread) — watchdog, see Watchdog
#include <utility>

#include "sim/progress.hh"
#include "util/annotations.hh"
#include "util/crc32.hh"
#include "util/event_log.hh"
#include "util/json.hh"
#include "util/mutex.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

#if defined(__unix__) || defined(__APPLE__)
#define TL_CRASH_REPORTS 1
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tl
{

namespace
{

using SweepClock = std::chrono::steady_clock;

double
elapsedSeconds(SweepClock::time_point from, SweepClock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

std::uint64_t
elapsedMs(SweepClock::time_point from, SweepClock::time_point to)
{
    double ms = elapsedSeconds(from, to) * 1000.0;
    return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms);
}

void
validateSupervisorOptions(const RunOptions &options)
{
    if (options.warmupFraction < 0.0 ||
        options.warmupFraction >= 1.0) {
        fatal("RunOptions::warmupFraction must be in [0, 1), got %g",
              options.warmupFraction);
    }
}

/**
 * Deadline enforcement. One background thread holds a map of armed
 * cells; when a cell's deadline passes, its cancel token is set and
 * the entry dropped. The worker arms before an attempt and disarms
 * after, so a retried cell gets a fresh deadline per attempt.
 *
 * This is deliberately a raw std::thread and not a pool task: the
 * watchdog must keep running while every pool worker is wedged inside
 * a hung cell — scheduling it on the pool would deadlock exactly when
 * it is needed. Exceptions cannot escape its loop (it only touches
 * the map and atomics) and the destructor joins it.
 */
class Watchdog
{
  public:
    explicit Watchdog(double deadlineSeconds)
        : deadline(deadlineSeconds),
          ticker([this] { loop(); }) // tl-lint: allow(thread)
    {}

    ~Watchdog()
    {
        {
            MutexLock lock(mutex);
            stopping = true;
        }
        wake.notifyAll();
        ticker.join();
    }

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Start @p cell's deadline clock; the watchdog may set @p cancel. */
    void
    arm(std::size_t cell, std::atomic<bool> *cancel)
    {
        MutexLock lock(mutex);
        armed[cell] = Armed{
            cancel,
            SweepClock::now() +
                std::chrono::duration_cast<SweepClock::duration>(
                    std::chrono::duration<double>(deadline))};
    }

    /** Stop watching @p cell (its token may already be set). */
    void
    disarm(std::size_t cell)
    {
        MutexLock lock(mutex);
        armed.erase(cell);
    }

  private:
    struct Armed
    {
        std::atomic<bool> *cancel = nullptr;
        SweepClock::time_point expires;
    };

    void
    loop()
    {
        // Tick fast enough that a timeout is noticed well before a
        // deadline's worth of extra work happens, without spinning.
        const auto tick = std::chrono::duration_cast<
            std::chrono::milliseconds>(std::chrono::duration<double>(
            std::clamp(deadline / 8.0, 0.001, 0.05)));
        MutexLock lock(mutex);
        while (!stopping) {
            (void)wake.waitFor(mutex, tick);
            if (stopping)
                break;
            const SweepClock::time_point now = SweepClock::now();
            for (auto it = armed.begin(); it != armed.end();) {
                if (now >= it->second.expires) {
                    it->second.cancel->store(
                        true, std::memory_order_relaxed);
                    it = armed.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    const double deadline;
    Mutex mutex;
    CondVar wake;
    bool stopping TL_GUARDED_BY(mutex) = false;
    std::map<std::size_t, Armed> armed TL_GUARDED_BY(mutex);
    std::thread ticker; // tl-lint: allow(thread)
};

#ifdef TL_CRASH_REPORTS

/**
 * Signal-safe crash reporting. Everything the handler touches is
 * preallocated, fixed-size process-global state: workers pre-render
 * their cell identity into a per-slot char buffer *before* running
 * the cell, so the handler only has to open/write/close — all
 * async-signal-safe — and re-raise. One report per process: the
 * first crashing thread claims the file.
 */
constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL,
                                 SIGABRT};
constexpr std::size_t kNumCrashSignals =
    sizeof kCrashSignals / sizeof kCrashSignals[0];

/** Slot 0 is the calling thread, slot i + 1 pool worker i. */
constexpr std::size_t kMaxCrashSlots = 129;
constexpr std::size_t kCrashTextBytes = 384;

struct CrashSlot
{
    std::atomic<bool> active{false};
    char text[kCrashTextBytes] = {};
};

struct CrashState
{
    std::atomic<bool> installed{false};
    std::atomic<bool> reported{false};
    char path[512] = {};
    CrashSlot slots[kMaxCrashSlots];
    struct sigaction saved[kNumCrashSignals] = {};
};

CrashState g_crash;

void
crashWrite(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t wrote = ::write(fd, data, size);
        if (wrote <= 0)
            return;
        data += wrote;
        size -= static_cast<std::size_t>(wrote);
    }
}

void
crashWriteStr(int fd, const char *text)
{
    std::size_t size = 0;
    while (text[size] != '\0')
        ++size;
    crashWrite(fd, text, size);
}

void
crashWriteU64(int fd, unsigned long long value)
{
    char buffer[24];
    std::size_t at = sizeof buffer;
    do {
        buffer[--at] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value > 0 && at > 0);
    crashWrite(fd, buffer + at, sizeof buffer - at);
}

extern "C" void
tlCrashHandler(int signal)
{
    if (!g_crash.reported.exchange(true)) {
        int fd = ::open(g_crash.path, O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
        if (fd >= 0) {
            crashWriteStr(fd,
                          "{\"kind\": \"crash-report\", \"signal\": ");
            crashWriteU64(fd,
                          static_cast<unsigned long long>(signal));
            crashWriteStr(fd, ", \"cells\": [");
            bool first = true;
            for (const CrashSlot &slot : g_crash.slots) {
                if (!slot.active.load(std::memory_order_acquire))
                    continue;
                if (!first)
                    crashWriteStr(fd, ", ");
                crashWriteStr(fd, slot.text);
                first = false;
            }
            crashWriteStr(fd, "]}\n");
            ::close(fd);
        }
    }
    // Put the original disposition back and re-deliver, so the
    // process still dies by this signal (death tests and shells see
    // the true cause, core dumps still happen where enabled).
    for (std::size_t i = 0; i < kNumCrashSignals; ++i) {
        if (kCrashSignals[i] == signal)
            ::sigaction(signal, &g_crash.saved[i], nullptr);
    }
    ::raise(signal);
}

bool
installCrashReporter(const std::string &path)
{
    bool expected = false;
    if (!g_crash.installed.compare_exchange_strong(expected, true))
        return false; // another supervisor owns the handlers
    g_crash.reported.store(false);
    std::snprintf(g_crash.path, sizeof g_crash.path, "%s",
                  path.c_str());
    struct sigaction action = {};
    action.sa_handler = tlCrashHandler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0; i < kNumCrashSignals; ++i)
        ::sigaction(kCrashSignals[i], &action, &g_crash.saved[i]);
    return true;
}

void
uninstallCrashReporter()
{
    for (std::size_t i = 0; i < kNumCrashSignals; ++i)
        ::sigaction(kCrashSignals[i], &g_crash.saved[i], nullptr);
    for (CrashSlot &slot : g_crash.slots)
        slot.active.store(false, std::memory_order_relaxed);
    g_crash.installed.store(false);
}

std::size_t
crashSlotIndex()
{
    return static_cast<std::size_t>(ThreadPool::currentWorkerIndex() +
                                    1);
}

void
publishCrashCell(std::size_t slot, std::size_t cell,
                 const std::string &column,
                 const std::string &workload, std::uint32_t attempt,
                 const std::string &resumeFrom)
{
    if (!g_crash.installed.load(std::memory_order_relaxed) ||
        slot >= kMaxCrashSlots)
        return;
    CrashSlot &entry = g_crash.slots[slot];
    entry.active.store(false, std::memory_order_relaxed);
    std::string column_escaped = jsonEscape(column);
    std::string workload_escaped = jsonEscape(workload);
    std::string resume_escaped = jsonEscape(resumeFrom);
    std::snprintf(entry.text, sizeof entry.text,
                  "{\"cell\": %llu, \"column\": \"%s\", "
                  "\"workload\": \"%s\", \"attempt\": %u, "
                  "\"resume\": \"%s\"}",
                  static_cast<unsigned long long>(cell),
                  column_escaped.c_str(), workload_escaped.c_str(),
                  attempt, resume_escaped.c_str());
    entry.active.store(true, std::memory_order_release);
}

void
clearCrashCell(std::size_t slot)
{
    if (slot < kMaxCrashSlots)
        g_crash.slots[slot].active.store(false,
                                         std::memory_order_relaxed);
}

#else // !TL_CRASH_REPORTS

bool
installCrashReporter(const std::string &)
{
    return false;
}

void
uninstallCrashReporter()
{
}

std::size_t
crashSlotIndex()
{
    return 0;
}

void
publishCrashCell(std::size_t, std::size_t, const std::string &,
                 const std::string &, std::uint32_t,
                 const std::string &)
{
}

void
clearCrashCell(std::size_t)
{
}

#endif // TL_CRASH_REPORTS

} // namespace

FaultPlan &
FaultPlan::fault(std::size_t cell, CellFaultKind kind,
                 std::uint32_t failAttempts)
{
    entries.push_back(Entry{cell, kind, failAttempts});
    return *this;
}

CellFaultHook
FaultPlan::hook() const
{
    // Copy the schedule into the closure so the plan object need not
    // outlive the supervisor run.
    std::vector<Entry> plan = entries;
    return [plan](std::size_t cell, std::uint32_t attempt,
                  const std::atomic<bool> &cancel) -> Status {
        for (const Entry &entry : plan) {
            if (entry.cell != cell || attempt > entry.failAttempts)
                continue;
            switch (entry.kind) {
              case CellFaultKind::RetryableFailure:
                return unavailableError(
                    "injected retryable fault (cell %llu attempt %u)",
                    static_cast<unsigned long long>(cell), attempt);
              case CellFaultKind::PermanentFailure:
                return corruptDataError(
                    "injected permanent fault (cell %llu attempt %u)",
                    static_cast<unsigned long long>(cell), attempt);
              case CellFaultKind::Throw:
                throw std::runtime_error(strprintf(
                    "injected throw (cell %llu attempt %u)",
                    static_cast<unsigned long long>(cell), attempt));
              case CellFaultKind::Hang:
                // Wedge until the watchdog fires; the poll keeps the
                // hang cooperative so tests stay fast and TSan-clean.
                while (!cancel.load(std::memory_order_relaxed)) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
                return Status();
            }
        }
        return Status();
    };
}

std::uint32_t
gridSignature(const std::vector<SweepSpec> &columns,
              const std::vector<const Workload *> &workloads,
              std::uint64_t branchBudget, const RunOptions &options)
{
    Crc32 crc;
    crc.updateU64(branchBudget);
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t warmup_bits = 0;
    std::memcpy(&warmup_bits, &options.warmupFraction,
                sizeof warmup_bits);
    crc.updateU64(warmup_bits);
    crc.updateU32(options.contextSwitches ? 1 : 0);
    crc.updateU64(options.contextSwitchInterval);
    crc.updateU32(options.switchOnTrap ? 1 : 0);
    crc.updateU64(columns.size());
    for (const SweepSpec &column : columns) {
        crc.update(column.displayName.data(),
                   column.displayName.size());
        crc.updateU32(column.contextSwitches ? 1 : 0);
    }
    crc.updateU64(workloads.size());
    for (const Workload *workload : workloads) {
        const std::string name = workload->name();
        crc.update(name.data(), name.size());
    }
    return crc.value();
}

SweepSupervisor::SweepSupervisor(Config config, RunOptions options)
    : supConfig(std::move(config)),
      runOptions(options),
      ownedSuite(
          std::make_unique<WorkloadSuite>(options.branchBudget)),
      suitePtr(ownedSuite.get())
{
    validateSupervisorOptions(runOptions);
}

SweepSupervisor::SweepSupervisor(Config config, WorkloadSuite &suite,
                                 RunOptions options)
    : supConfig(std::move(config)), runOptions(options),
      suitePtr(&suite)
{
    validateSupervisorOptions(runOptions);
}

std::string
SweepSupervisor::checkpointPath() const
{
    return supConfig.directory + "/CHECKPOINT_" + supConfig.name +
           ".jsonl";
}

std::string
SweepSupervisor::crashReportPath() const
{
    return supConfig.directory + "/CRASH_" + supConfig.name + ".json";
}

void
SweepSupervisor::setFaultHook(CellFaultHook hook)
{
    faultHook = std::move(hook);
}

void
SweepSupervisor::setWindowHook(WindowHook hook)
{
    windowHook = std::move(hook);
}

namespace
{

/** Mutable per-cell supervision state (one writer per cell). */
struct SupervisedCell
{
    CellExecution exec;
    CellState state = CellState::Failed;
    std::uint32_t attempts = 0;
    std::uint64_t wallMs = 0;
    bool restored = false;
    Status error;
};

CheckpointCell
journalRecord(std::uint64_t cell, const SweepSpec &column,
              const Workload &workload, const SupervisedCell &slot)
{
    CheckpointCell record;
    record.cell = cell;
    record.state = slot.state;
    record.column = column.displayName;
    record.workload = workload.name();
    record.attempts = slot.attempts;
    record.wallMs = slot.wallMs;
    record.isInteger = workload.isInteger();
    if (slot.exec.result)
        record.result = slot.exec.result->sim;
    return record;
}

} // namespace

SupervisedSweep
SweepSupervisor::run(const std::vector<SweepSpec> &columns)
{
    const std::vector<const Workload *> &workloads = allWorkloads();
    const std::size_t perColumn = workloads.size();
    const std::size_t cells = columns.size() * perColumn;
    const std::string checkpointFile = checkpointPath();

    CheckpointHeader header;
    header.name = supConfig.name;
    header.columns = columns.size();
    header.workloads = perColumn;
    header.branchBudget = suitePtr->condBranches();
    header.signature = gridSignature(columns, workloads,
                                     header.branchBudget, runOptions);

    SupervisedSweep sweep;
    std::vector<SupervisedCell> grid(cells);

    // Phase 1: restore. A checkpoint is only trusted when its header
    // matches this exact request; anything else (missing file, torn
    // header, different grid) degrades to a fresh run with a warning,
    // never to mixed results.
    if (supConfig.resume && supConfig.checkpoint) {
        StatusOr<Checkpoint> loaded =
            readCheckpointFile(checkpointFile);
        if (!loaded.ok()) {
            warn("supervisor '%s': no resumable checkpoint (%s); "
                 "starting fresh",
                 supConfig.name.c_str(),
                 loaded.status().toString().c_str());
        } else if (!(loaded->header == header)) {
            warn("supervisor '%s': checkpoint %s was written by a "
                 "different request (signature %u, expected %u); "
                 "starting fresh",
                 supConfig.name.c_str(), checkpointFile.c_str(),
                 loaded->header.signature, header.signature);
        } else {
            if (loaded->droppedLines > 0 ||
                loaded->duplicateLines > 0) {
                warn("supervisor '%s': checkpoint salvage dropped "
                     "%llu torn and %llu duplicate line(s)",
                     supConfig.name.c_str(),
                     static_cast<unsigned long long>(
                         loaded->droppedLines),
                     static_cast<unsigned long long>(
                         loaded->duplicateLines));
            }
            // Chunk cursors of cells the interrupted run had in
            // flight: pure observability — the cells recompute
            // deterministically from the start, so the manifest stays
            // byte-identical to an uninterrupted run's.
            for (const CheckpointProgress &cursor : loaded->progress) {
                if (cursor.cell >= cells || loaded->find(cursor.cell))
                    continue;
                inform("supervisor '%s': cell %llu was interrupted "
                       "after %llu streamed window(s) (%llu records); "
                       "recomputing",
                       supConfig.name.c_str(),
                       static_cast<unsigned long long>(cursor.cell),
                       static_cast<unsigned long long>(cursor.window),
                       static_cast<unsigned long long>(
                           cursor.records));
            }
            for (const CheckpointCell &record : loaded->cells) {
                if (!cellStateRestorable(record.state))
                    continue;
                SupervisedCell &slot = grid[record.cell];
                slot.restored = true;
                slot.state = record.state;
                slot.attempts = record.attempts;
                slot.wallMs = record.wallMs;
                if (record.state == CellState::Ok) {
                    slot.exec.result = BenchmarkResult{
                        record.workload, record.isInteger,
                        record.result};
                }
                ++sweep.restoredCells;
            }
            inform("supervisor '%s': restored %llu of %llu cells "
                   "from %s",
                   supConfig.name.c_str(),
                   static_cast<unsigned long long>(
                       sweep.restoredCells),
                   static_cast<unsigned long long>(cells),
                   checkpointFile.c_str());
        }
    }

    // Phase 2: reopen the journal. Restored cells are re-journaled
    // first so the file is always a complete record of the current
    // run — a second resume never depends on the previous file.
    // CheckpointWriter serializes appends internally, so the workers
    // share it with no supervisor-side lock (and thus no ordering
    // constraint against the supervisor's own mutexes).
    CheckpointWriter journal;
    if (supConfig.checkpoint) {
        Status opened = journal.open(checkpointFile, header);
        if (!opened.ok()) {
            warn("supervisor '%s': checkpointing disabled: %s",
                 supConfig.name.c_str(),
                 opened.toString().c_str());
        } else {
            for (std::size_t cell = 0; cell < cells; ++cell) {
                if (!grid[cell].restored)
                    continue;
                const SweepSpec &column = columns[cell / perColumn];
                const Workload &workload = *workloads[cell % perColumn];
                Status appended = journal.append(journalRecord(
                    cell, column, workload, grid[cell]));
                if (!appended.ok()) {
                    warn("supervisor '%s': checkpoint append failed: "
                         "%s",
                         supConfig.name.c_str(),
                         appended.toString().c_str());
                    break;
                }
            }
        }
    }

    const bool crashReporting =
        supConfig.crashReports &&
        installCrashReporter(crashReportPath());

    std::unique_ptr<Watchdog> watchdog;
    if (runOptions.cellDeadline > 0.0)
        watchdog = std::make_unique<Watchdog>(runOptions.cellDeadline);

    if (runOptions.events) {
        runOptions.events->emit(
            "sweep.start",
            {EventField::u64("columns", columns.size()),
             EventField::u64("workloads", perColumn),
             EventField::u64("threads", runOptions.threads),
             EventField::boolean("supervised", true),
             EventField::u64("restored", sweep.restoredCells)});
    }

    sweep.profile = SweepProfile{};
    sweep.profile.threads = runOptions.threads;
    sweep.profile.cells.resize(cells);
    sweep.profile.workerBusySeconds.assign(runOptions.threads + 1,
                                           0.0);

    const SweepClock::time_point sweepStart = SweepClock::now();
    ProgressMeter progressMeter(runOptions.progress,
                                runOptions.progressInterval,
                                sweepStart);

    const std::uint32_t maxAttempts =
        std::max(1u, runOptions.maxCellAttempts);

    auto finishCell = [&](std::size_t cell, const SweepSpec &column,
                          const Workload &workload,
                          SweepClock::time_point end) {
        SupervisedCell &slot = grid[cell];
        if (runOptions.events) {
            runOptions.events->emit(
                "cell.done",
                {EventField::str("column", column.displayName),
                 EventField::str("workload", workload.name()),
                 EventField::str("state",
                                 cellStateName(slot.state)),
                 EventField::u64("attempts", slot.attempts),
                 EventField::u64("wallMs", slot.wallMs),
                 EventField::boolean("restored", slot.restored)});
        }
        progressMeter.tick(cells, end);
    };

    auto compute = [&](std::size_t cell) {
        const SweepSpec &column = columns[cell / perColumn];
        const Workload &workload = *workloads[cell % perColumn];
        SupervisedCell &slot = grid[cell];
        CellProfile &timing = sweep.profile.cells[cell];
        timing.column = column.displayName;
        timing.workload = workload.name();

        if (slot.restored) {
            // Satisfied from the checkpoint: no simulation, no wall
            // time, attributed to no worker.
            timing.worker = -1;
            timing.skipped = !slot.exec.result.has_value();
            finishCell(cell, column, workload, SweepClock::now());
            return;
        }

        if (runOptions.events) {
            runOptions.events->emit(
                "cell.start",
                {EventField::str("column", column.displayName),
                 EventField::str("workload", workload.name())});
        }

        const SweepClock::time_point start = SweepClock::now();
        const std::size_t crashSlot = crashSlotIndex();
        std::atomic<bool> cancel{false};

        // Streamed cells journal a chunk cursor after every consumed
        // window (and only then invoke the test hook, so a kill from
        // the hook finds the cursor already flushed). Journal-append
        // failures are ignored here: progress records are
        // observability, and a dead journal already warned once.
        StreamProgressFn streamProgress;
        if (journal.isOpen() || windowHook) {
            streamProgress = [&, cell](const StreamProgress &at) {
                CheckpointProgress record;
                record.cell = cell;
                record.window = at.window;
                record.records = at.records;
                record.conditionalBranches = at.conditionalBranches;
                (void)journal.append(record);
                if (windowHook)
                    windowHook(cell, at.window);
            };
        }

        for (std::uint32_t attempt = 1;; ++attempt) {
            cancel.store(false, std::memory_order_relaxed);
            publishCrashCell(crashSlot, cell, column.displayName,
                             workload.name(), attempt,
                             checkpointFile);
            const SweepClock::time_point attemptStart =
                SweepClock::now();

            Status failure;
            CellExecution exec;
            if (watchdog)
                watchdog->arm(cell, &cancel);
            try {
                if (faultHook)
                    failure = faultHook(cell, attempt, cancel);
                if (failure.ok() &&
                    !cancel.load(std::memory_order_relaxed)) {
                    exec = runSweepCell(*suitePtr, runOptions,
                                        column, workload, &cancel,
                                        streamProgress);
                }
            } catch (const std::exception &error) {
                failure = internalError("cell threw: %s",
                                        error.what());
            } catch (...) { // tl-lint: allow(catch-all)
                // Not swallowed: the unknown exception is recorded
                // as a permanent Status on the cell report.
                failure = internalError(
                    "cell threw a non-standard exception");
            }
            if (watchdog)
                watchdog->disarm(cell);
            clearCrashCell(crashSlot);

            slot.attempts = attempt;
            slot.wallMs =
                elapsedMs(attemptStart, SweepClock::now());

            if (cancel.load(std::memory_order_relaxed) ||
                exec.cancelled) {
                // Terminal, never retried: a cell that cannot finish
                // inside the deadline once would just burn another
                // deadline's worth of wall time per retry.
                slot.state = CellState::TimedOut;
                slot.error = unavailableError(
                    "cell exceeded its %gs deadline",
                    runOptions.cellDeadline);
                break;
            }
            if (failure.ok() && !exec.trainingStatus.ok()) {
                if (exec.trainingStatus.code() ==
                    StatusCode::FailedPrecondition) {
                    // The paper's NA entries: an omitted point, not
                    // a failure (Fig. 11).
                    slot.state = CellState::Skipped;
                    slot.error = exec.trainingStatus;
                    slot.exec = std::move(exec);
                    break;
                }
                failure = exec.trainingStatus;
            }
            // A streaming failure (unwritable spill, bad chunk CRC
            // mid-replay) classifies like any other cell failure:
            // IoError retries, CorruptData is terminal.
            if (failure.ok() && !exec.streamStatus.ok())
                failure = exec.streamStatus;
            if (failure.ok()) {
                slot.state = CellState::Ok;
                slot.exec = std::move(exec);
                break;
            }
            slot.error = failure;
            if (isRetryable(failure.code()) &&
                attempt < maxAttempts) {
                if (runOptions.retryBackoffSeconds > 0.0) {
                    const std::uint32_t shift =
                        std::min(attempt - 1, 20u);
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            runOptions.retryBackoffSeconds *
                            static_cast<double>(1u << shift)));
                }
                continue;
            }
            slot.state = CellState::Failed;
            break;
        }

        const SweepClock::time_point end = SweepClock::now();
        timing.worker = ThreadPool::currentWorkerIndex();
        timing.queueSeconds = elapsedSeconds(sweepStart, start);
        timing.wallSeconds = elapsedSeconds(start, end);
        timing.skipped = !slot.exec.result.has_value();
        sweep.profile.workerBusySeconds[timing.worker + 1] +=
            timing.wallSeconds;

        if (cellStateRestorable(slot.state)) {
            Status appended = journal.append(
                journalRecord(cell, column, workload, slot));
            if (!appended.ok() &&
                appended.code() != StatusCode::FailedPrecondition) {
                // FailedPrecondition = journal never opened or
                // already shut down by a failed append elsewhere;
                // only a fresh I/O failure warrants the warning and
                // the shutdown.
                warn("supervisor '%s': checkpoint append failed: %s",
                     supConfig.name.c_str(),
                     appended.toString().c_str());
                journal.close();
            }
        }

        finishCell(cell, column, workload, end);
    };

    if (runOptions.threads == 0) {
        for (std::size_t cell = 0; cell < cells; ++cell)
            compute(cell);
    } else {
        ThreadPool pool(runOptions.threads);
        parallelFor(pool, cells, compute);
    }

    watchdog.reset();
    if (crashReporting)
        uninstallCrashReporter();

    sweep.profile.wallSeconds =
        elapsedSeconds(sweepStart, SweepClock::now());

    // Deterministic harvest, as in SweepRunner: grid-index order.
    // Restored cells carry no metrics (their counters died with the
    // interrupted process); only cells executed here contribute.
    if (runOptions.metrics) {
        for (const SupervisedCell &slot : grid) {
            if (!slot.restored && cellStateRestorable(slot.state))
                runOptions.metrics->merge(slot.exec.metrics);
        }
    }

    // Provenance harvest, same grid order. A restored cell has a
    // result but no attribution snapshot (the checkpoint journals
    // results only), so it is marked missing — the collector keeps
    // the partial per-scheme tables and drops its `complete` flag,
    // which tells the manifest validator not to cross-check totals
    // against result cells.
    if (runOptions.attribution) {
        for (std::size_t cell = 0; cell < cells; ++cell) {
            const SupervisedCell &slot = grid[cell];
            if (!cellStateRestorable(slot.state) ||
                !slot.exec.result) {
                continue;
            }
            const std::string &scheme =
                columns[cell / perColumn].displayName;
            if (!slot.restored && slot.exec.attribution) {
                runOptions.attribution->add(scheme,
                                            *slot.exec.attribution);
            } else {
                runOptions.attribution->markMissing(scheme);
            }
        }
    }

    sweep.cells.reserve(cells);
    for (std::size_t cell = 0; cell < cells; ++cell) {
        const SupervisedCell &slot = grid[cell];
        CellReport report;
        report.column = columns[cell / perColumn].displayName;
        report.workload = workloads[cell % perColumn]->name();
        report.state = slot.state;
        report.attempts = std::max(1u, slot.attempts);
        report.wallMs = slot.wallMs;
        report.restored = slot.restored;
        report.error = slot.error;
        if (slot.state == CellState::TimedOut ||
            slot.state == CellState::Failed)
            sweep.degraded = true;
        sweep.cells.push_back(std::move(report));
    }

    sweep.results.reserve(columns.size());
    for (std::size_t ci = 0; ci < columns.size(); ++ci) {
        ResultSet column(columns[ci].displayName);
        for (std::size_t wi = 0; wi < perColumn; ++wi) {
            if (const auto &cell =
                    grid[ci * perColumn + wi].exec.result)
                column.add(*cell);
        }
        sweep.results.push_back(std::move(column));
    }

    if (runOptions.events) {
        runOptions.events->emit(
            "sweep.done",
            {EventField::u64("cells", cells),
             EventField::real("wallSeconds",
                              sweep.profile.wallSeconds),
             EventField::real("occupancy",
                              sweep.profile.occupancy()),
             EventField::boolean("degraded", sweep.degraded)});
    }

    return sweep;
}

} // namespace tl
