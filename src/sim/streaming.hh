/**
 * @file
 * Streaming simulation: drive a predictor across the FlatTrace
 * windows of a WindowSupplier (trace/chunked.hh) with all simulation
 * state carried between windows, so a streamed run is counter-
 * identical to materializing the whole trace — including where a
 * branch budget lands mid-window and how a warmup/measured split
 * straddles a chunk boundary.
 *
 * The determinism argument is a composition of existing contracts:
 *
 *  - simulate() on a FlatCursor leaves cursor.pos exactly after the
 *    budget-exhausting conditional branch (engine.hh), so resuming
 *    the same window continues at the precise record a monolithic
 *    run would process next;
 *  - predictor state (tables, histories) lives in the predictor and
 *    flows across windows untouched;
 *  - the only loop-local state, the instructions-since-context-switch
 *    phase, is threaded through SimOptions::switchCarry.
 *
 * A StreamCursor persists across calls, which is how the warmup and
 * measured phases of a sweep cell share one pass over the trace: the
 * warmup call stops mid-window at the exact split record, and the
 * measured call resumes from that position (the warmup-fraction
 * distortion fix — split positioning no longer depends on how the
 * trace was chunked).
 */

#ifndef TL_SIM_STREAMING_HH
#define TL_SIM_STREAMING_HH

#include <cstdint>
#include <functional>

#include "sim/engine.hh"
#include "trace/chunked.hh"
#include "trace/flat.hh"
#include "util/status_or.hh"

namespace tl
{

/**
 * Per-window progress report, delivered after each fully consumed
 * window. The supervisor journals these as checkpoint chunk cursors
 * (sim/checkpoint.hh), giving kill-and-resume runs mid-cell
 * observability.
 */
struct StreamProgress
{
    std::uint64_t window = 0;  //!< windows fully consumed so far
    std::uint64_t records = 0; //!< records consumed so far
    std::uint64_t conditionalBranches = 0; //!< this call's running sum
};

using StreamProgressFn = std::function<void(const StreamProgress &)>;

/**
 * Replay position over a windowed trace stream — the streaming
 * sibling of FlatCursor. Owns the reusable window and the cross-
 * window carry state; persists across simulateStream() calls so
 * budget-split runs (warmup, then measured) resume exactly where the
 * previous call stopped.
 *
 * Window-load failures follow the TraceSource idiom: the stream ends
 * and status() records why (OK at a clean end of stream). Check it
 * after the last simulateStream() call on the cursor.
 */
class StreamCursor
{
  public:
    explicit StreamCursor(WindowSupplier &supplier)
        : supplier_(&supplier)
    {
    }

    /** Why the stream ended; OK while healthy / at a clean end. */
    const Status &status() const { return status_; }

    /** Windows fully consumed so far. */
    std::uint64_t windowsConsumed() const { return windowsConsumed_; }

    /**
     * Global record index of the replay position: records in fully
     * consumed windows plus the position inside the current one.
     * This is the index the warmup-split regression test pins.
     */
    std::uint64_t
    globalRecordIndex() const
    {
        return recordsBefore_ + pos_;
    }

  private:
    template <typename SimulateWindow>
    friend SimResult streamLoop(StreamCursor &cursor,
                                const SimOptions &options,
                                SimulateWindow &&simulateWindow,
                                const StreamProgressFn &progress);

    WindowSupplier *supplier_;
    FlatTrace window_;
    std::size_t pos_ = 0;
    bool windowLoaded_ = false;
    bool exhausted_ = false;
    std::uint64_t windowsConsumed_ = 0;
    std::uint64_t recordsBefore_ = 0; //!< records in consumed windows
    std::uint64_t carry_ = 0; //!< insts-since-switch across windows
    Status status_;
};

/**
 * The window-by-window driver shared by the streaming entry points:
 * pulls windows from the cursor's supplier, simulates each with the
 * remaining budget and the carry threaded through, and accumulates
 * one SimResult. @p simulateWindow is invoked as
 * (FlatCursor &, const SimOptions &) -> SimResult; @p progress fires
 * after each fully consumed window.
 */
template <typename SimulateWindow>
SimResult
streamLoop(StreamCursor &cursor, const SimOptions &options,
           SimulateWindow &&simulateWindow,
           const StreamProgressFn &progress)
{
    SimResult total;
    const std::uint64_t cap = options.maxConditionalBranches;
    while (!cap || total.conditionalBranches < cap) {
        if (!cursor.windowLoaded_) {
            if (cursor.exhausted_ || !cursor.status_.ok())
                break;
            StatusOr<bool> got =
                cursor.supplier_->nextWindow(cursor.window_);
            if (!got.ok()) {
                cursor.status_ = got.status();
                cursor.exhausted_ = true;
                break;
            }
            if (!*got || cursor.window_.empty()) {
                cursor.exhausted_ = true;
                break;
            }
            cursor.windowLoaded_ = true;
            cursor.pos_ = 0;
        }
        SimOptions window = options;
        window.maxConditionalBranches =
            cap ? cap - total.conditionalBranches : 0;
        window.switchCarry = &cursor.carry_;
        FlatCursor flat(cursor.window_, cursor.pos_);
        SimResult piece = simulateWindow(flat, window);
        cursor.pos_ = flat.pos;
        total.conditionalBranches += piece.conditionalBranches;
        total.correct += piece.correct;
        total.taken += piece.taken;
        total.allBranches += piece.allBranches;
        total.instructions += piece.instructions;
        total.contextSwitchCount += piece.contextSwitchCount;
        if (cursor.pos_ >= cursor.window_.size()) {
            cursor.recordsBefore_ += cursor.window_.size();
            cursor.windowLoaded_ = false;
            cursor.pos_ = 0; // retired: the global index must not
                             // re-count this window's records
            ++cursor.windowsConsumed_;
            if (progress) {
                progress({cursor.windowsConsumed_,
                          cursor.recordsBefore_,
                          total.conditionalBranches});
            }
        }
        if (piece.cancelled) {
            total.cancelled = true;
            break;
        }
    }
    return total;
}

/**
 * Template-tier streaming simulate: the windowed equivalent of
 * simulate(FlatCursor &, P &). Resumable — a budget-stopped call
 * leaves the cursor positioned exactly after the last counted
 * conditional branch, and the next call on the same cursor continues
 * from there.
 */
template <concepts::Predictor P>
SimResult
simulateStream(StreamCursor &cursor, P &predictor,
               const SimOptions &options = {})
{
    return streamLoop(cursor, options,
                      [&](FlatCursor &flat, const SimOptions &window) {
                          return simulate(flat, predictor, window);
                      },
                      StreamProgressFn{});
}

/**
 * Streaming counterpart of simulateDispatch(): each window runs
 * through the devirtualizing dispatcher, so the FastTwoLevel lanes
 * consume chunk windows at full speed. @p progress (optional) fires
 * after every fully consumed window — the supervisor's checkpoint
 * chunk cursor.
 */
inline SimResult
simulateStreamDispatch(StreamCursor &cursor, BranchPredictor &predictor,
                       const SimOptions &options = {},
                       const StreamProgressFn &progress = {})
{
    return streamLoop(
        cursor, options,
        [&](FlatCursor &flat, const SimOptions &window) {
            return simulateDispatch(flat, predictor, window);
        },
        progress);
}

} // namespace tl

#endif // TL_SIM_STREAMING_HH
