#include "sim/engine.hh"

#include "predictor/concepts.hh"
#include "trace/filter.hh"
#include "trace/synthetic.hh"
#include "util/check.hh"

namespace tl
{

// The concrete trace sources must model the pull protocol the
// simulation loop below consumes. The asserts live here — the one
// translation unit that sees both layers — so trace/ headers stay
// free of predictor/ includes.
static_assert(concepts::TraceSource<TraceSource>,
              "the TraceSource interface must model its own concept");
static_assert(concepts::TraceSource<TraceReplaySource>);
static_assert(concepts::TraceSource<FilterSource>);
static_assert(concepts::TraceSource<PatternSource>);
static_assert(concepts::TraceSource<LoopSource>);
static_assert(concepts::TraceSource<BiasedSource>);
static_assert(concepts::TraceSource<MarkovSource>);
static_assert(concepts::TraceSource<InterleaveSource>);
static_assert(concepts::TraceSource<ClassMixSource>);

SimResult
simulate(TraceSource &source, BranchPredictor &predictor,
         const SimOptions &options)
{
    SimResult result;
    std::uint64_t insts_since_switch = 0;

    // Cancellation poll cadence: an atomic load per record would be
    // measurable on the hot loop, so the token is checked once per
    // kCancelPollStride records — bounding the overshoot after the
    // supervisor's watchdog fires to a few hundred records.
    constexpr std::uint32_t kCancelPollStride = 256;
    std::uint32_t records_until_poll = kCancelPollStride;

    BranchRecord record;
    while (result.conditionalBranches <
               (options.maxConditionalBranches
                    ? options.maxConditionalBranches
                    : UINT64_MAX) &&
           source.next(record)) {
        if (options.cancelToken && --records_until_poll == 0) {
            records_until_poll = kCancelPollStride;
            if (options.cancelToken->load(std::memory_order_relaxed)) {
                result.cancelled = true;
                break;
            }
        }
        ++result.allBranches;
        result.instructions += record.instsSince;

        if (options.contextSwitches) {
            insts_since_switch += record.instsSince;
            bool trap_switch = options.switchOnTrap && record.trap;
            bool quantum_switch =
                insts_since_switch >= options.contextSwitchInterval;
            if (trap_switch || quantum_switch) {
                predictor.contextSwitch();
                ++result.contextSwitchCount;
                insts_since_switch = 0;
            }
        }

        if (!record.isConditional())
            continue;

        ++result.conditionalBranches;
        if (record.taken)
            ++result.taken;

        BranchQuery query = BranchQuery::fromRecord(record);
        TL_DCHECK(query.cls == BranchClass::Conditional,
                  "isConditional record produced a %d-class query",
                  static_cast<int>(query.cls));
        bool prediction = predictor.predict(query);
        predictor.update(query, record.taken);
        if (prediction == record.taken)
            ++result.correct;
    }
    return result;
}

SimResult
simulate(const Trace &trace, BranchPredictor &predictor,
         const SimOptions &options)
{
    TraceReplaySource source(trace);
    return simulate(source, predictor, options);
}

} // namespace tl
