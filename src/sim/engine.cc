#include "sim/engine.hh"

namespace tl
{

SimResult
simulate(TraceSource &source, BranchPredictor &predictor,
         const SimOptions &options)
{
    SimResult result;
    std::uint64_t insts_since_switch = 0;

    BranchRecord record;
    while (result.conditionalBranches <
               (options.maxConditionalBranches
                    ? options.maxConditionalBranches
                    : UINT64_MAX) &&
           source.next(record)) {
        ++result.allBranches;
        result.instructions += record.instsSince;

        if (options.contextSwitches) {
            insts_since_switch += record.instsSince;
            bool trap_switch = options.switchOnTrap && record.trap;
            bool quantum_switch =
                insts_since_switch >= options.contextSwitchInterval;
            if (trap_switch || quantum_switch) {
                predictor.contextSwitch();
                ++result.contextSwitchCount;
                insts_since_switch = 0;
            }
        }

        if (!record.isConditional())
            continue;

        ++result.conditionalBranches;
        if (record.taken)
            ++result.taken;

        BranchQuery query = BranchQuery::fromRecord(record);
        bool prediction = predictor.predict(query);
        predictor.update(query, record.taken);
        if (prediction == record.taken)
            ++result.correct;
    }
    return result;
}

SimResult
simulate(const Trace &trace, BranchPredictor &predictor,
         const SimOptions &options)
{
    TraceReplaySource source(trace);
    return simulate(source, predictor, options);
}

} // namespace tl
