#include "sim/engine.hh"

#include "predictor/btb.hh"
#include "predictor/static_schemes.hh"
#include "predictor/two_level.hh"
#include "trace/filter.hh"
#include "trace/synthetic.hh"

namespace tl
{

// The concrete trace sources must model the pull protocol the
// simulation loop consumes. The asserts live here — the one
// translation unit that sees both layers — so trace/ headers stay
// free of predictor/ includes.
static_assert(concepts::TraceSource<TraceSource>,
              "the TraceSource interface must model its own concept");
static_assert(concepts::TraceSource<TraceReplaySource>);
static_assert(concepts::TraceSource<FlatCursor>);
static_assert(concepts::TraceSource<FilterSource>);
static_assert(concepts::TraceSource<PatternSource>);
static_assert(concepts::TraceSource<LoopSource>);
static_assert(concepts::TraceSource<BiasedSource>);
static_assert(concepts::TraceSource<MarkovSource>);
static_assert(concepts::TraceSource<InterleaveSource>);
static_assert(concepts::TraceSource<ClassMixSource>);

SimResult
simulate(TraceSource &source, BranchPredictor &predictor,
         const SimOptions &options)
{
    return detail::simulateLoop(source, predictor, options);
}

SimResult
simulate(const Trace &trace, BranchPredictor &predictor,
         const SimOptions &options)
{
    TraceReplaySource source(trace);
    return detail::simulateLoop(source, predictor, options);
}

namespace
{

/**
 * Adapter making one compile-time mode binding of TwoLevelPredictor's
 * hot path (predictStatic/updateStatic) look like a predictor to the
 * template tier. The bench sweeps all run speculative-off, concat-
 * indexed configurations, so only those modes get lanes.
 */
template <HistoryScope HS, PatternScope PS, BhtKind BK>
struct FastTwoLevel
{
    TwoLevelPredictor &p;

    std::string name() const { return p.name(); }
    bool
    predict(const BranchQuery &query)
    {
        return p.predictStatic<HS, PS, BK, SpeculativeMode::Off,
                               IndexMode::Concat>(query);
    }
    void
    update(const BranchQuery &query, bool taken)
    {
        p.updateStatic<HS, PS, BK, SpeculativeMode::Off,
                       IndexMode::Concat>(query, taken);
    }
    void contextSwitch() { p.contextSwitch(); }
    void reset() { p.reset(); }
};

template <HistoryScope HS, PatternScope PS, BhtKind BK>
SimResult
runFastTwoLevel(FlatCursor &cursor, TwoLevelPredictor &predictor,
                const SimOptions &options)
{
    static_assert(
        concepts::Predictor<FastTwoLevel<HS, PS, BK>>,
        "the dispatch lanes must model concepts::Predictor");
    FastTwoLevel<HS, PS, BK> fast{predictor};
    return simulate(cursor, fast, options);
}

SimResult
dispatchTwoLevel(FlatCursor &cursor, TwoLevelPredictor &predictor,
                 const SimOptions &options)
{
    const TwoLevelConfig &cfg = predictor.config();
    if (cfg.speculative == SpeculativeMode::Off &&
        cfg.indexMode == IndexMode::Concat) {
        const bool perAddr =
            cfg.historyScope == HistoryScope::PerAddress;
        const bool ideal = cfg.bhtKind == BhtKind::Ideal;
        if (cfg.historyScope == HistoryScope::Global &&
            cfg.patternScope == PatternScope::Global) {
            return runFastTwoLevel<HistoryScope::Global,
                                   PatternScope::Global,
                                   BhtKind::Practical>(
                cursor, predictor, options);
        }
        if (perAddr && cfg.patternScope == PatternScope::Global) {
            return ideal
                       ? runFastTwoLevel<HistoryScope::PerAddress,
                                         PatternScope::Global,
                                         BhtKind::Ideal>(
                             cursor, predictor, options)
                       : runFastTwoLevel<HistoryScope::PerAddress,
                                         PatternScope::Global,
                                         BhtKind::Practical>(
                             cursor, predictor, options);
        }
        if (perAddr && cfg.patternScope == PatternScope::PerAddress) {
            return ideal
                       ? runFastTwoLevel<HistoryScope::PerAddress,
                                         PatternScope::PerAddress,
                                         BhtKind::Ideal>(
                             cursor, predictor, options)
                       : runFastTwoLevel<HistoryScope::PerAddress,
                                         PatternScope::PerAddress,
                                         BhtKind::Practical>(
                             cursor, predictor, options);
        }
    }
    // Extension quadrants and speculative/xor modes: still the
    // devirtualized (dynamic-modes) loop, just without lane folding.
    return simulate(cursor, predictor, options);
}

} // namespace

SimResult
simulateDispatch(FlatCursor &cursor, BranchPredictor &predictor,
                 const SimOptions &options)
{
    // Provenance runs exclude the devirtualized lanes: the attributor
    // needs the virtual ShadowProbe hook, and the FastTwoLevel object
    // code must stay attribution-free (hotpath_gate.py enforces it).
    if (options.attribution)
        return simulate(cursor, predictor, options);
    if (auto *twoLevel = dynamic_cast<TwoLevelPredictor *>(&predictor))
        return dispatchTwoLevel(cursor, *twoLevel, options);
    if (auto *btb = dynamic_cast<BtbPredictor *>(&predictor))
        return simulate(cursor, *btb, options);
    if (auto *fixed = dynamic_cast<AlwaysTakenPredictor *>(&predictor))
        return simulate(cursor, *fixed, options);
    return simulate(cursor, predictor, options);
}

} // namespace tl
