#include "sim/analysis.hh"

#include <unordered_map>

#include "predictor/history_register.hh"
#include "util/status.hh"

namespace tl
{

namespace
{

/** Outcome tallies for one (branch, pattern) or (pattern) cell. */
struct Tally
{
    std::uint64_t taken = 0;
    std::uint64_t total = 0;

    bool
    majorityTaken() const
    {
        return 2 * taken >= total;
    }
};

/** Shared tail: given per-(pattern, branch) tallies, build a report. */
InterferenceReport
buildReport(
    const std::unordered_map<
        std::uint64_t,
        std::unordered_map<std::uint64_t, Tally>> &cells)
{
    InterferenceReport report;
    for (const auto &[pattern, branches] : cells) {
        ++report.patternsUsed;
        if (branches.size() > 1)
            ++report.patternsShared;

        Tally global;
        for (const auto &[pc, tally] : branches) {
            global.taken += tally.taken;
            global.total += tally.total;
        }
        bool global_majority = global.majorityTaken();
        for (const auto &[pc, tally] : branches) {
            report.accesses += tally.total;
            if (branches.size() > 1)
                report.sharedAccesses += tally.total;
            if (tally.majorityTaken() != global_majority)
                report.conflictingAccesses += tally.total;
        }
    }
    return report;
}

} // namespace

InterferenceReport
analyzePagInterference(const Trace &trace, unsigned historyBits)
{
    if (historyBits == 0 || historyBits > 24)
        fatal("interference analysis: history length %u out of "
              "range",
              historyBits);

    std::unordered_map<std::uint64_t, HistoryRegister> histories;
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, Tally>>
        cells;

    for (const BranchRecord &record : trace.records()) {
        if (!record.isConditional())
            continue;
        auto [it, inserted] =
            histories.try_emplace(record.pc, historyBits);
        HistoryRegister &history = it->second;
        Tally &tally = cells[history.value()][record.pc];
        ++tally.total;
        if (record.taken)
            ++tally.taken;
        history.shiftIn(record.taken);
    }
    return buildReport(cells);
}

InterferenceReport
analyzeGagInterference(const Trace &trace, unsigned historyBits)
{
    if (historyBits == 0 || historyBits > 24)
        fatal("interference analysis: history length %u out of "
              "range",
              historyBits);

    HistoryRegister history(historyBits);
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, Tally>>
        cells;

    for (const BranchRecord &record : trace.records()) {
        if (!record.isConditional())
            continue;
        Tally &tally = cells[history.value()][record.pc];
        ++tally.total;
        if (record.taken)
            ++tally.taken;
        history.shiftIn(record.taken);
    }
    return buildReport(cells);
}

} // namespace tl
