/**
 * @file
 * Machine-readable run manifests: every figure or bench binary can
 * summarize what it just did — build identity, the RunOptions in
 * force, the result grid with its geometric means, per-cell wall
 * times, and a metrics snapshot — into one "RUN_<name>.json" file.
 *
 * The schema (kind "run-manifest", schemaVersion 1) is what
 * tools/validate_manifest.py checks and tools/report.py renders; keep
 * the three in sync. BENCH_throughput.json is the same format with a
 * different file stem (bench/throughput.cc).
 *
 * Manifests never read the environment: callers decide the output
 * directory (sim/report.hh routes the figure binaries through the one
 * blessed TL_RESULTS_DIR read).
 */

#ifndef TL_SIM_MANIFEST_HH
#define TL_SIM_MANIFEST_HH

#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/supervisor.hh"
#include "sim/sweep.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/status_or.hh"

namespace tl
{

/** Schema version of a plain (unsupervised) manifest. */
inline constexpr int runManifestSchemaVersion = 1;

/**
 * Schema version once a "supervision" section is present (per-cell
 * state/attempts/wallMs, degraded flag). tools/validate_manifest.py
 * accepts both; a manifest upgrades itself to 2 the moment
 * recordSupervision() is called.
 */
inline constexpr int supervisedManifestSchemaVersion = 2;

/**
 * Schema version once an "attribution" section is present (per-scheme
 * top-K miss PCs, taxonomy totals, coverage curve — see
 * sim/attribution.hh). recordAttribution() upgrades the manifest to
 * 3; tools/validate_manifest.py accepts 1, 2 and 3.
 */
inline constexpr int attributedManifestSchemaVersion = 3;

/** Builder for one run's manifest. */
class RunManifest
{
  public:
    /** @param name The run's file stem: "RUN_<name>.json". */
    explicit RunManifest(std::string name);

    const std::string &name() const { return runName; }

    /** "RUN_<name>.json". */
    std::string fileName() const;

    /** Record the options the run was driven with. */
    void recordOptions(const RunOptions &options);

    /** Append one result column (scheme, cells, gmean rows). */
    void addResults(const ResultSet &column);

    /** Append every column of a sweep. */
    void addResults(const std::vector<ResultSet> &columns);

    /** Record the sweep's wall-clock profile. */
    void recordProfile(const SweepProfile &profile);

    /** Record a merged metrics snapshot. */
    void recordMetrics(const MetricsSnapshot &snapshot);

    /**
     * Record a supervised sweep's per-cell dispositions (and its
     * result columns, via addResults by the caller). Upgrades the
     * manifest to schemaVersion 2.
     */
    void recordSupervision(const SupervisedSweep &sweep);

    /**
     * Record folded misprediction provenance (per-scheme top-K PCs,
     * taxonomy, coverage curve). Upgrades the manifest to
     * schemaVersion 3.
     */
    void recordAttribution(const AttributionCollector &collector);

    /**
     * Attach an arbitrary extra value under "notes.<key>" — bench
     * binaries use this for measurements outside the common schema
     * (throughput rates, speedup ratios).
     */
    void note(const std::string &key, Json value);

    /** The manifest document built so far. */
    Json toJson() const;

    /**
     * Write "<directory>/RUN_<name>.json"; non-OK when the file
     * cannot be created.
     */
    Status writeTo(const std::string &directory) const;

    /**
     * Write the manifest to an explicit @p path (for stems outside
     * the RUN_ convention, e.g. BENCH_throughput.json).
     */
    Status writeFile(const std::string &path) const;

  private:
    std::string runName;
    Json optionsJson;
    Json resultsJson = Json::array();
    Json profileJson;
    Json metricsJson;
    Json supervisionJson;
    Json attributionJson;
    Json notesJson = Json::object();
};

/** Serialize one result column (shared with toJson()). */
Json resultSetToJson(const ResultSet &column);

/** Serialize a metrics snapshot. */
Json metricsToJson(const MetricsSnapshot &snapshot);

/** Serialize a sweep profile. */
Json sweepProfileToJson(const SweepProfile &profile);

/** Serialize the options a run was driven with. */
Json runOptionsToJson(const RunOptions &options);

/** Serialize a supervised sweep's cell dispositions. */
Json supervisionToJson(const SupervisedSweep &sweep);

/**
 * Serialize folded provenance: per scheme the top-K miss PCs (count +
 * error bound), taxonomy totals, and a coverage curve — "the top N
 * heaviest static branches carry X% of the misses" at 1%, 5% and 10%
 * of each scheme's static branches — the cross-scheme concentration
 * table tools/report.py --h2p renders.
 */
Json attributionToJson(const AttributionCollector &collector);

class TraceEventWriter;

/**
 * Render a sweep's observational timeline as Chrome trace events
 * (util/trace_event.hh) into @p writer: one lane per execution slot
 * with a duration span per cell (queue wait recovered from the
 * profile), plus instant markers for the supervisor's retries,
 * timeouts, failures and restores when @p sweep is non-null.
 */
void sweepTraceEvents(const SweepProfile &profile,
                      const SupervisedSweep *sweep,
                      TraceEventWriter &writer);

/**
 * Convenience: render @p profile (and @p sweep's supervision
 * markers) and write "<directory>/TRACE_<name>.json".
 */
Status writeTraceFile(const std::string &directory,
                      const std::string &name,
                      const SweepProfile &profile,
                      const SupervisedSweep *sweep = nullptr);

} // namespace tl

#endif // TL_SIM_MANIFEST_HH
