/**
 * @file
 * spice2g6: analog circuit simulation (floating point, 606 static
 * conditional branches in the paper's trace; training data
 * "short greycode.in", testing data "greycode.in").
 *
 * The model follows the benchmark's shape: an outer timestep loop
 * containing a Newton iteration whose trip count is data-dependent
 * (a period-13 pattern of 2..5 iterations), a chain of 40 generated
 * device-evaluation routines branching on node voltages, and a
 * forward/backward sparse solve with occupancy tests. Mixed
 * regular/irregular behaviour lands it between the loop-bound FP
 * codes and the integer codes.
 */

#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t nodeV = 0x0000;        // 32 node voltages
constexpr std::uint64_t newtonPattern = 0x100; // 13-entry trip pattern
constexpr std::uint64_t sparsity = 0x200;      // 32 occupancy flags
constexpr std::uint64_t voltPattern = 0x300;   // 13-entry voltage wave
constexpr std::uint64_t stampVec = 0x400;      // matrix stamp area
constexpr unsigned numNodes = 32;
constexpr unsigned patternPeriod = 13;
constexpr std::uint64_t seedAddr = 0x430; // LCG seed input word
constexpr unsigned numDevices = 40;

class Spice2g6Workload : public Workload
{
  public:
    std::string name() const override { return "spice2g6"; }
    bool isInteger() const override { return false; }
    std::string testingDataset() const override
    {
        return "greycode.in";
    }
    std::string trainingDataset() const override
    {
        return "short greycode.in";
    }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "greycode.in")
            return Dataset{datasetName, 0x591ce1, 100};
        if (datasetName == "short greycode.in")
            return Dataset{datasetName, 0x591ce2, 50};
        fatal("spice2g6: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0x591ce0);
        Rng dataRng(data.seed);

        // The circuit is the same in both datasets ("short
        // greycode.in" is a shorter transient of the same netlist);
        // the dataset perturbs ~15% of the waveform entries.
        Rng base(0x591ba5e);
        std::vector<std::int64_t> trips(patternPeriod);
        for (std::int64_t &t : trips)
            t = 2 + base.nextRange(0, 3);
        std::vector<std::int64_t> wave =
            randomArray(base, patternPeriod, 0, 4095);
        std::vector<std::int64_t> occupied(numNodes);
        for (std::int64_t &f : occupied)
            f = base.nextBool(0.7) ? 1 : 0;
        for (std::int64_t &t : trips) {
            if (dataRng.nextBool(0.15))
                t = 2 + dataRng.nextRange(0, 3);
        }
        for (std::int64_t &v : wave) {
            if (dataRng.nextBool(0.15))
                v = dataRng.nextRange(0, 4095);
        }
        emitArray(b, newtonPattern, trips);
        emitArray(b, voltPattern, wave);
        emitArray(b, sparsity, occupied);
        emitArray(b, nodeV, randomArray(dataRng, numNodes, 0, 4095));

        std::vector<Label> devices;
        devices.reserve(numDevices);
        for (unsigned d = 0; d < numDevices; ++d)
            devices.push_back(b.newLabel(strprintf("dev_%u", d)));
        Label solve = b.newLabel("solve");

        // r3 = LCG, r10 = timestep, r13 = period, r14 = newton
        // counter, r15 = newton trip target.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));
        b.li(13, patternPeriod);

        emitStartupPhase(b, structure, 520, 0x440);

        Label outer = b.here("timestep");

        // Refresh the node voltages from the dataset pattern with a
        // timestep-dependent rotation: device-evaluation branch
        // operands follow a period-13 schedule, as an oscillating
        // circuit's node voltages do.
        b.li(26, 0);
        b.li(28, numNodes);
        Label refresh = b.here("refresh");
        b.muli(4, 26, 5);
        b.add(4, 4, 10); // 5*node + t
        b.rem(4, 4, 13);
        b.ld(7, 4, static_cast<std::int64_t>(voltPattern));
        b.st(7, 26, static_cast<std::int64_t>(nodeV));
        b.addi(26, 26, 1);
        b.blt(26, 28, refresh);

        // Newton trip target for this timestep.
        b.rem(4, 10, 13);
        b.ld(15, 4, static_cast<std::int64_t>(newtonPattern));
        b.li(14, 0);

        Label newton = b.here("newton");
        for (unsigned d = 0; d < numDevices; ++d)
            b.call(devices[d]);
        b.call(solve);
        b.addi(14, 14, 1);
        b.blt(14, 15, newton); // data-dependent convergence

        b.addi(10, 10, 1);
        b.br(outer);

        for (unsigned d = 0; d < numDevices; ++d)
            emitDevice(b, structure, devices[d]);
        emitSolve(b, solve);
        b.halt();

        return b.build();
    }

  private:
    /**
     * One device model: read two node voltages, long arithmetic,
     * two region branches (cutoff / saturation), stamp one node.
     */
    static void
    emitDevice(ProgramBuilder &b, Rng &structure, Label entry)
    {
        b.bind(entry);
        unsigned node_a =
            static_cast<unsigned>(structure.nextBelow(numNodes));
        unsigned node_b =
            static_cast<unsigned>(structure.nextBelow(numNodes));
        unsigned node_out =
            static_cast<unsigned>(structure.nextBelow(numNodes));

        b.ld(20, 0, static_cast<std::int64_t>(nodeV + node_a));
        b.ld(21, 0, static_cast<std::int64_t>(nodeV + node_b));
        emitAluRun(b, 8 + static_cast<unsigned>(
                             structure.nextBelow(9)));

        // Region test 1: cutoff.
        Label active = b.newLabel();
        std::int64_t vth =
            800 + static_cast<std::int64_t>(structure.nextBelow(800));
        b.li(9, vth);
        b.bge(20, 9, active);
        emitAluRun(b, 2); // leakage only
        b.bind(active);

        // Region test 2: saturation (biased: most devices linear).
        Label linear = b.newLabel();
        b.li(9, 3600);
        b.blt(21, 9, linear);
        b.addi(21, 21, -128);
        b.bind(linear);

        // Stamp into the matrix area (devices never read it back, so
        // within a timestep every Newton iteration sees the same node
        // voltages — spice's device models are functions of V).
        b.add(22, 20, 21);
        b.srli(22, 22, 1);
        b.andi(22, 22, 4095);
        b.st(22, 0, static_cast<std::int64_t>(stampVec + node_out));
        b.ret();
    }

    /** Sparse triangular solve with occupancy-test branches. */
    static void
    emitSolve(ProgramBuilder &b, Label solve)
    {
        b.bind(solve);
        // Forward pass.
        b.li(26, 0);
        b.li(28, numNodes);
        Label fwd = b.here("solve_fwd");
        Label fwd_skip = b.newLabel("solve_fwd_skip");
        b.ld(27, 26, static_cast<std::int64_t>(sparsity));
        b.beqz(27, fwd_skip); // empty row
        b.ld(20, 26, static_cast<std::int64_t>(nodeV));
        b.muli(20, 20, 3);
        b.srli(20, 20, 2);
        b.andi(20, 20, 4095);
        b.st(20, 26, static_cast<std::int64_t>(nodeV));
        b.bind(fwd_skip);
        b.addi(26, 26, 1);
        b.blt(26, 28, fwd);

        // Backward pass.
        b.li(26, numNodes - 1);
        Label bwd = b.here("solve_bwd");
        Label bwd_skip = b.newLabel("solve_bwd_skip");
        b.ld(27, 26, static_cast<std::int64_t>(sparsity));
        b.beqz(27, bwd_skip);
        b.ld(20, 26, static_cast<std::int64_t>(nodeV));
        b.addi(20, 20, 5);
        b.andi(20, 20, 4095);
        b.st(20, 26, static_cast<std::int64_t>(nodeV));
        b.bind(bwd_skip);
        b.addi(26, 26, -1);
        b.bge(26, 0, bwd);
        b.ret();
    }
};

} // namespace

const Workload &
spice2g6Workload()
{
    static Spice2g6Workload workload;
    return workload;
}

} // namespace tl
