/**
 * @file
 * espresso: two-level logic minimization (integer, 556 static
 * conditional branches in the paper's trace; training data "cps",
 * testing data "bca").
 *
 * The real benchmark manipulates cube covers with word-level bit
 * operations: counting literals, testing containment, merging cubes.
 * This model iterates over a cube array whose 12-bit words follow a
 * period-13 pattern with sparse bit-flip noise, runs a data-dependent
 * popcount loop per cube (variable trip counts — the signature
 * espresso behaviour), and dispatches each cube to one of 32
 * generated bit-test blocks.
 */

#include "workloads/registry.hh"

#include <algorithm>

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t cubes = 0x0000;        // cube array
constexpr std::uint64_t cubePattern = 0x3000;  // 13-entry word pattern
constexpr std::uint64_t opTable = 0x3100;      // bit-op jump table
constexpr unsigned numOps = 32;
constexpr unsigned patternPeriod = 13;
constexpr std::uint64_t seedAddr = 0x3200;  // LCG seed input word
constexpr std::uint64_t countAddr = 0x3201; // cube count input word
constexpr std::int64_t cubeMask = 0xfff; // 12-bit cubes

class EspressoWorkload : public Workload
{
  public:
    std::string name() const override { return "espresso"; }
    bool isInteger() const override { return true; }
    std::string testingDataset() const override { return "bca"; }
    std::string trainingDataset() const override { return "cps"; }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "bca")
            return Dataset{datasetName, 0xbca0001, 100};
        if (datasetName == "cps")
            return Dataset{datasetName, 0xc9500fe, 60};
        fatal("espresso: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0xe59e550u);
        Rng dataRng(data.seed);

        std::int64_t cubeCount =
            std::max<std::int64_t>(128, 512 * data.scale / 100);

        // Cube pattern words: a base cover shared by every dataset
        // (the same logic function), with a per-dataset perturbation
        // of ~20% of the words — training on "cps" mostly transfers
        // to "bca", as with the real inputs.
        Rng base(0xe5ba5e);
        std::vector<std::int64_t> pattern(patternPeriod);
        for (std::int64_t &word : pattern) {
            word = 0;
            for (unsigned bit = 0; bit < 12; ++bit) {
                if (base.nextBool(0.5))
                    word |= std::int64_t{1} << bit;
            }
        }
        for (std::int64_t &word : pattern) {
            if (dataRng.nextBool(0.2))
                word ^= std::int64_t{1}
                        << dataRng.nextBelow(12);
        }
        emitArray(b, cubePattern, pattern);

        // r3 = LCG, r5 = i, r6 = #cubes, r11 = literal count,
        // r13 = period, r16 = running cover state.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.data(countAddr, cubeCount);
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));
        b.ld(6, 0, static_cast<std::int64_t>(countAddr));
        b.li(13, patternPeriod);

        emitStartupPhase(b, structure, 456, 0x3210);

        Label outer = b.here("outer");

        // Regenerate the cube array: pattern word, occasionally with
        // one extra bit flipped.
        b.li(5, 0);
        Label regen = b.here("regen");
        b.rem(4, 5, 13);
        b.ld(7, 4, static_cast<std::int64_t>(cubePattern));
        emitLcgStep(b, 3);
        b.srli(8, 3, 40);
        b.andi(8, 8, 31);
        Label keep = b.newLabel("keep");
        b.bnez(8, keep); // 31/32: keep the pattern word
        b.srli(8, 3, 33);
        b.andi(8, 8, 7); // flip one of the low 8 bit positions
        b.li(9, 1);
        b.sll(9, 9, 8);
        b.xor_(7, 7, 9); // flip one bit
        b.bind(keep);
        b.st(7, 5, static_cast<std::int64_t>(cubes));
        b.addi(5, 5, 1);
        b.blt(5, 6, regen);

        // Scan: popcount loop + dispatched bit-test block per cube.
        b.li(5, 0);
        Label scan = b.here("scan");
        b.ld(1, 5, static_cast<std::int64_t>(cubes));

        // Literal count: do { w &= w - 1; count++ } while (w) — the
        // backward loop branch is taken popcount(cube)-1 times, a
        // patterned trip count.
        b.mov(2, 1);
        Label pop_done = b.newLabel("pop_done");
        b.beqz(2, pop_done); // empty cube (rare for dense covers)
        Label pop_loop = b.here("pop_loop");
        b.addi(7, 2, -1);
        b.and_(2, 2, 7);
        b.addi(11, 11, 1);
        b.bnez(2, pop_loop);
        b.bind(pop_done);

        // Dispatch to a bit-test block.
        b.andi(7, 5, numOps - 1);
        b.ld(8, 7, static_cast<std::int64_t>(opTable));
        b.jr(8);

        Label cont = b.newLabel("scan_cont");
        std::vector<Label> ops;
        ops.reserve(numOps);
        for (unsigned t = 0; t < numOps; ++t)
            ops.push_back(emitBitOp(b, structure, t, cont));
        emitJumpTable(b, opTable, ops);

        b.bind(cont);
        b.addi(5, 5, 1);
        b.blt(5, 6, scan);

        b.addi(10, 10, 1);
        b.br(outer);
        b.halt();

        return b.build();
    }

  private:
    /**
     * Emit one bit-test block: tests per-block masks of the cube in
     * r1 and updates the cover state in r16; ends at @p cont.
     */
    static Label
    emitBitOp(ProgramBuilder &b, Rng &structure, unsigned index,
              Label cont)
    {
        Label entry = b.here(strprintf("op_%u", index));

        // Containment-style test on a single literal (the outcome
        // follows the cube pattern, so it is learnable but far from
        // fully biased).
        std::int64_t mask1 = std::int64_t{1} << structure.nextBelow(12);
        b.andi(7, 1, mask1);
        Label miss = b.newLabel();
        b.beqz(7, miss);
        // Overlap: merge into the running cover.
        b.or_(16, 16, 1);
        emitAluRun(b, 1 + static_cast<unsigned>(
                              structure.nextBelow(2)));
        // Secondary test on two literals of the evolving cover.
        std::int64_t mask2 =
            (std::int64_t{1} << structure.nextBelow(12)) |
            (std::int64_t{1} << structure.nextBelow(12));
        b.andi(7, 16, mask2);
        Label no_reduce = b.newLabel();
        b.beqz(7, no_reduce);
        b.andi(16, 16, (~mask2) & cubeMask); // reduce the cover
        b.bind(no_reduce);
        b.br(cont);

        b.bind(miss);
        // Disjoint: count it and occasionally reset the cover.
        b.addi(11, 11, 1);
        Label no_reset = b.newLabel();
        b.bnez(16, no_reset);
        b.mov(16, 1);
        b.bind(no_reset);
        b.br(cont);
        return entry;
    }
};

} // namespace

const Workload &
espressoWorkload()
{
    static EspressoWorkload workload;
    return workload;
}

} // namespace tl
