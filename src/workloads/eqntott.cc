/**
 * @file
 * eqntott: truth-table comparison (integer, 277 static conditional
 * branches in the paper's trace; testing data int_pri_3.eqn, no
 * training set).
 *
 * The real benchmark spends its time in cmppt(), a comparison routine
 * over pairs of term vectors, whose branches are data-dependent and
 * correlated (the famous "if (a == b) ... if (a == 0)" chains).
 *
 * This model scans two term arrays whose contents follow a
 * period-13 pattern with 1/128 noise, dispatching each element pair to
 * one of 32 generated comparator blocks (distinct static branch
 * sites) through a jump table, then runs a small data-dependent
 * insertion pass. Patterned-but-not-biased branch sequences are
 * exactly where pattern-history prediction separates from per-branch
 * counters.
 */

#include "workloads/registry.hh"

#include <algorithm>

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t termA = 0x0000;    // term vector A
constexpr std::uint64_t termB = 0x2000;    // term vector B
constexpr std::uint64_t patternA = 0x4000; // 13-entry data pattern A
constexpr std::uint64_t patternB = 0x4100; // 13-entry data pattern B
constexpr std::uint64_t cmpTable = 0x4200; // comparator jump table
constexpr unsigned numComparators = 32;
constexpr unsigned patternPeriod = 13;
constexpr std::uint64_t seedAddr = 0x4300;  // LCG seed input word
constexpr std::uint64_t termsAddr = 0x4301; // term count input word

class EqntottWorkload : public Workload
{
  public:
    std::string name() const override { return "eqntott"; }
    bool isInteger() const override { return true; }
    std::string testingDataset() const override
    {
        return "int_pri_3.eqn";
    }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "int_pri_3.eqn")
            return Dataset{datasetName, 0xeb1700a1, 100};
        fatal("eqntott: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0xe96707u); // code shape: fixed across datasets
        Rng dataRng(data.seed);

        std::int64_t terms =
            std::max<std::int64_t>(256, 1024 * data.scale / 100);

        // --- data ---------------------------------------------------
        emitArray(b, patternA, randomArray(dataRng, patternPeriod, 0, 3));
        emitArray(b, patternB, randomArray(dataRng, patternPeriod, 0, 3));

        // --- code ---------------------------------------------------
        // r3 = LCG state, r5 = i, r6 = #terms, r11 = score,
        // r13 = pattern period, r29 = stack pointer.
        // The dataset's seed and problem size are program *inputs*
        // read from data memory: the code is identical across
        // datasets, as the profiling schemes require.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.data(termsAddr, terms);
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));
        b.ld(6, 0, static_cast<std::int64_t>(termsAddr));
        b.li(13, patternPeriod);

        // One-shot initialization code (option parsing, table setup):
        // the long static-branch tail of Table 1.
        emitStartupPhase(b, structure, 144, 0x4310);

        Label outer = b.here("outer");

        // Regenerate both term vectors: pattern entry with 1/128
        // noise.
        b.li(5, 0);
        Label regen = b.here("regen");
        b.rem(4, 5, 13);
        b.ld(7, 4, static_cast<std::int64_t>(patternA));
        emitLcgStep(b, 3);
        b.srli(8, 3, 40);
        b.andi(8, 8, 127);
        Label keep_a = b.newLabel("keep_a");
        b.bnez(8, keep_a);
        b.srli(7, 3, 33);
        b.andi(7, 7, 3);
        b.bind(keep_a);
        b.st(7, 5, static_cast<std::int64_t>(termA));
        b.ld(7, 4, static_cast<std::int64_t>(patternB));
        emitLcgStep(b, 3);
        b.srli(8, 3, 40);
        b.andi(8, 8, 127);
        Label keep_b = b.newLabel("keep_b");
        b.bnez(8, keep_b);
        b.srli(7, 3, 21);
        b.andi(7, 7, 3);
        b.bind(keep_b);
        b.st(7, 5, static_cast<std::int64_t>(termB));
        b.addi(5, 5, 1);
        b.blt(5, 6, regen);

        // Scan: dispatch each pair to a comparator block.
        b.li(5, 0);
        Label scan = b.here("scan");
        b.ld(1, 5, static_cast<std::int64_t>(termA));
        b.ld(2, 5, static_cast<std::int64_t>(termB));
        b.andi(7, 5, numComparators - 1);
        b.ld(8, 7, static_cast<std::int64_t>(cmpTable));
        b.jr(8);

        Label cont = b.newLabel("scan_cont");
        std::vector<Label> comparators;
        comparators.reserve(numComparators);
        for (unsigned t = 0; t < numComparators; ++t)
            comparators.push_back(
                emitComparator(b, structure, t, cont));
        emitJumpTable(b, cmpTable, comparators);

        b.bind(cont);
        b.addi(5, 5, 1);
        b.blt(5, 6, scan);

        // Small insertion pass over the first 32 terms (data-
        // dependent swap branch, like eqntott's sorting phase).
        b.li(5, 1);
        b.li(9, 32);
        Label sort = b.here("sort");
        b.ld(1, 5, static_cast<std::int64_t>(termA));
        b.addi(4, 5, -1);
        b.ld(2, 4, static_cast<std::int64_t>(termA));
        Label no_swap = b.newLabel("no_swap");
        b.bge(1, 2, no_swap);
        b.st(2, 5, static_cast<std::int64_t>(termA));
        b.st(1, 4, static_cast<std::int64_t>(termA));
        b.bind(no_swap);
        b.addi(5, 5, 1);
        b.blt(5, 9, sort);

        b.addi(10, 10, 1); // pass counter
        b.br(outer);
        b.halt();

        return b.build();
    }

  private:
    /**
     * Emit one comparator block. Reads the pair in (r1, r2), updates
     * the score in r11, ends with a branch to @p cont. Structure
     * varies per block so each contributes distinct static branch
     * sites with distinct behaviour.
     */
    static Label
    emitComparator(ProgramBuilder &b, Rng &structure, unsigned index,
                   Label cont)
    {
        Label entry = b.here(strprintf("cmp_%u", index));

        Label done = b.newLabel();
        Label on_eq = b.newLabel();
        Label on_lt = b.newLabel();

        // if (a == b) ...
        b.beq(1, 2, on_eq);
        // if (a < b) ...
        b.blt(1, 2, on_lt);
        // a > b path.
        b.addi(11, 11, 1);
        emitAluRun(b, 1 + static_cast<unsigned>(
                              structure.nextBelow(3)));
        b.br(done);

        b.bind(on_lt);
        b.addi(11, 11, -1);
        // Extra threshold test against a per-block constant.
        std::int64_t threshold =
            static_cast<std::int64_t>(structure.nextBelow(3));
        b.li(9, threshold);
        Label lt_small = b.newLabel();
        b.ble(2, 9, lt_small);
        b.addi(11, 11, -1);
        b.bind(lt_small);
        b.br(done);

        b.bind(on_eq);
        // Correlated follow-up: a == b, is a zero?
        Label eq_zero = b.newLabel();
        b.beqz(1, eq_zero);
        b.addi(11, 11, 2);
        b.br(done);
        b.bind(eq_zero);
        b.addi(11, 11, 3);

        b.bind(done);
        if (structure.nextBool(0.5))
            emitAluRun(b, 2);
        b.br(cont);
        return entry;
    }
};

} // namespace

const Workload &
eqntottWorkload()
{
    static EqntottWorkload workload;
    return workload;
}

} // namespace tl
