/**
 * @file
 * The Workload interface: a synthetic stand-in for one SPEC-89
 * benchmark (DESIGN.md, substitution S1).
 *
 * Each workload builds an M88-lite program whose *code* is a pure
 * function of the workload (identical across datasets) and whose
 * *data* comes from a named Dataset. Programs loop indefinitely over
 * their kernel, regenerating working data each pass, so a trace of
 * any requested length can be captured — the paper similarly traces a
 * fixed number of conditional branches (20 million) rather than whole
 * runs.
 *
 * Calling convention used by all workload code:
 *   - arguments in r1..r4, result in r1
 *   - r29 is the software stack pointer (grows downward)
 *   - callees may clobber r20..r28
 *   - data arrays start at low memory; the stack starts at stackBase
 */

#ifndef TL_WORKLOADS_WORKLOAD_HH
#define TL_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/cpu.hh"
#include "isa/program.hh"
#include "trace/trace.hh"
#include "util/random.hh"
#include "workloads/dataset.hh"

namespace tl
{

/** Base address of the software stack used by workload programs. */
constexpr std::uint64_t stackBase = (std::uint64_t{1} << 20) - 16;

/** One synthetic SPEC-like benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name ("eqntott", "gcc", ...). */
    virtual std::string name() const = 0;

    /** True for the integer benchmarks (Int GMean membership). */
    virtual bool isInteger() const = 0;

    /** Testing dataset name (Table 2). */
    virtual std::string testingDataset() const = 0;

    /** Training dataset name; empty string = NA (Table 2). */
    virtual std::string trainingDataset() const { return ""; }

    /** True if a training dataset exists. */
    bool hasTraining() const { return !trainingDataset().empty(); }

    /** Resolve a dataset name to its parameters. fatal() if unknown. */
    virtual Dataset dataset(const std::string &datasetName) const = 0;

    /** Build the program for @p data. */
    virtual isa::Program build(const Dataset &data) const = 0;

    /**
     * Build and run the program on @p datasetName, capturing a trace
     * of @p maxConditional conditional branches.
     */
    Trace capture(const std::string &datasetName,
                  std::uint64_t maxConditional) const;

    /** capture() on the testing dataset. */
    Trace captureTesting(std::uint64_t maxConditional) const;

    /** capture() on the training dataset; fatal() when NA. */
    Trace captureTraining(std::uint64_t maxConditional) const;

    /**
     * Streaming counterpart of capture(): a self-contained
     * TraceSource (owning the program and CPU) that emits exactly the
     * records capture(datasetName, maxConditional) would materialize
     * — without ever holding more than one in memory. The CPU is
     * deterministic, so two sources from the same call replay
     * identical streams; this is what lets 20M-branch workloads
     * stream through a fixed memory budget (sim/streaming.hh).
     */
    std::unique_ptr<TraceSource>
    openCapture(const std::string &datasetName,
                std::uint64_t maxConditional) const;

    /** openCapture() on the testing dataset. */
    std::unique_ptr<TraceSource>
    openTestingCapture(std::uint64_t maxConditional) const;
};

/**
 * Helpers shared by the workload program generators.
 */
namespace workload_util
{

/** Emit .data initializers for @p values starting at @p base. */
void emitArray(isa::ProgramBuilder &builder, std::uint64_t base,
               const std::vector<std::int64_t> &values);

/** Random vector of @p n values uniform in [lo, hi]. */
std::vector<std::int64_t> randomArray(Rng &rng, std::size_t n,
                                      std::int64_t lo, std::int64_t hi);

/**
 * Emit a run of @p count dependent ALU instructions cycling through
 * scratch registers (r27, r28, r30, r31, which workload code must
 * treat as clobbered) — straight-line "computation" filler that sets
 * the branch density of a workload (integer codes are ~24% branches,
 * floating point codes ~5%, per Section 4.1).
 */
void emitAluRun(isa::ProgramBuilder &builder, unsigned count);

/**
 * Emit a software-stack push of @p reg (r29 is the stack pointer).
 */
void emitPush(isa::ProgramBuilder &builder, isa::Reg reg);

/** Emit a software-stack pop into @p reg. */
void emitPop(isa::ProgramBuilder &builder, isa::Reg reg);

/**
 * Emit one 64-bit LCG step on @p state (state = state * A + C). The
 * workloads draw run-time data variation from this generator; its
 * high bits are extracted with srli/andi by the caller.
 */
void emitLcgStep(isa::ProgramBuilder &builder, isa::Reg state);

/**
 * Emit a jump table: @p tableBase[i] holds the code address of
 * targets[i], for jr-based dispatch.
 */
void emitJumpTable(isa::ProgramBuilder &builder, std::uint64_t tableBase,
                   const std::vector<isa::Label> &targets);

/**
 * Emit a one-shot startup phase of @p sites distinct conditional
 * branches, each testing a bit of a configuration word and executed
 * exactly once before the main loop.
 *
 * Real programs' static conditional branch counts (the paper's
 * Table 1) are dominated by code executed a handful of times —
 * initialization, option parsing, error paths — not by the hot
 * kernels. This models that long tail: it calibrates each workload's
 * static count to the paper's without perturbing steady-state branch
 * behaviour. Directions are taken-biased (~85%) so the cold
 * predictors' taken-initialized tables are mostly right, as they are
 * on real startup code.
 *
 * Uses data words at [@p scratchBase, @p scratchBase + 16) and
 * clobbers r26..r28.
 */
void emitStartupPhase(isa::ProgramBuilder &builder, Rng &structure,
                      unsigned sites, std::uint64_t scratchBase);

} // namespace workload_util

} // namespace tl

#endif // TL_WORKLOADS_WORKLOAD_HH
