/**
 * @file
 * Named datasets for the workload programs, mirroring the paper's
 * Table 2 (training and testing data sets per benchmark).
 *
 * A dataset never changes a workload's *code* — branch addresses must
 * be identical across datasets so that profiling-based schemes
 * (Profiling, GSg, PSg) trained on one dataset can predict a run on
 * another, exactly as in the paper. Datasets only parameterize the
 * initial data memory and problem scales.
 */

#ifndef TL_WORKLOADS_DATASET_HH
#define TL_WORKLOADS_DATASET_HH

#include <cstdint>
#include <string>

namespace tl
{

/** Parameters of one workload input. */
struct Dataset
{
    /** Dataset name from Table 2 (e.g. "int_pri_3.eqn"). */
    std::string name;

    /** Seed for the dataset's embedded data. */
    std::uint64_t seed = 1;

    /**
     * Relative problem scale; training datasets are usually smaller
     * than testing datasets (e.g. "tiny doducin" vs "doducin").
     */
    unsigned scale = 100;

    /** Human-readable "name (seed=..., scale=...)" description. */
    std::string describe() const;
};

} // namespace tl

#endif // TL_WORKLOADS_DATASET_HH
