/**
 * @file
 * gcc: the GNU C compiler (integer; by far the largest benchmark —
 * 6922 static conditional branches in the paper's trace; training
 * data cexp.i, testing data dbxout.i; many traps, which makes gcc the
 * benchmark most hurt by context switches in the paper's Figure 9).
 *
 * The model is a token-dispatch interpreter, the branchy core of a
 * compiler front end: a token stream (period-127 pattern with 1/64
 * noise, Zipf-skewed over 1024 token kinds) drives an indirect jump
 * through a 1024-entry handler table. Each generated handler carries
 * several conditional branches on the evolving parser state, giving
 * thousands of distinct static branch sites — enough to thrash a
 * 512-entry branch history table, reproducing the paper's Figure 10
 * capacity effects. A recursive-descent routine adds call/return
 * depth, and a TRAP fires every 1024 tokens to model gcc's frequent
 * system calls.
 */

#include "workloads/registry.hh"

#include <algorithm>
#include <cmath>

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t tokenPattern = 0x0000;  // 127-entry pattern
constexpr std::uint64_t handlerTable = 0x1000;  // 1024 handler addresses
constexpr unsigned numHandlers = 1024;
constexpr unsigned patternPeriod = 127;
constexpr std::uint64_t seedAddr = 0x1800; // LCG seed input word

class GccWorkload : public Workload
{
  public:
    std::string name() const override { return "gcc"; }
    bool isInteger() const override { return true; }
    std::string testingDataset() const override { return "dbxout.i"; }
    std::string trainingDataset() const override { return "cexp.i"; }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "dbxout.i")
            return Dataset{datasetName, 0xdb0001, 100};
        if (datasetName == "cexp.i")
            return Dataset{datasetName, 0xce4b01, 70};
        fatal("gcc: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0x9cc0de);
        Rng dataRng(data.seed);

        // Zipf-skewed token pattern: common tokens hit the same few
        // handlers, rare tokens touch the long tail. The base stream
        // is shared by every dataset (it is the same compiler parsing
        // the same language); the dataset perturbs ~15% of positions,
        // the way cexp.i and dbxout.i differ in content but not in
        // token statistics.
        Rng base(0x9ccba5e);
        std::vector<std::int64_t> pattern(patternPeriod);
        for (std::int64_t &token : pattern) {
            double u = base.nextDouble();
            token = static_cast<std::int64_t>(
                (numHandlers - 1) * std::pow(u, 4.0));
        }
        for (std::int64_t &token : pattern) {
            if (dataRng.nextBool(0.15)) {
                double u = dataRng.nextDouble();
                token = static_cast<std::int64_t>(
                    (numHandlers - 1) * std::pow(u, 4.0));
            }
        }
        emitArray(b, tokenPattern, pattern);

        // r2 = previous token (the handlers' context), r3 = LCG,
        // r5 = token index, r12 = period, r16/r17 = parser state,
        // r29 = stack pointer.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.li(2, 0);
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));
        b.li(12, patternPeriod);
        b.li(16, 0x5a5a);
        b.li(17, 1);

        // gcc's enormous one-shot tail: option handling, target
        // configuration, pass setup (Table 1: 6922 static branches).
        emitStartupPhase(b, structure, 5504, 0x1810);

        Label loop = b.here("token_loop");

        // Fetch the next token: pattern with 1/64 noise.
        b.rem(4, 5, 12);
        b.ld(1, 4, static_cast<std::int64_t>(tokenPattern));
        emitLcgStep(b, 3);
        b.srli(8, 3, 45);
        b.andi(8, 8, 63);
        Label use_pattern = b.newLabel("use_pattern");
        b.bnez(8, use_pattern);
        b.srli(1, 3, 30);
        b.andi(1, 1, numHandlers - 1);
        b.bind(use_pattern);

        // A trap (system call) every 512 tokens — gcc is the trap-
        // heavy benchmark in the paper's Figure 9.
        b.andi(9, 5, 511);
        Label no_trap = b.newLabel("no_trap");
        b.bnez(9, no_trap);
        b.trap();
        b.bind(no_trap);

        // Dispatch through the handler table.
        b.ld(8, 1, static_cast<std::int64_t>(handlerTable));
        b.jr(8);

        Label cont = b.newLabel("token_cont");
        std::vector<Label> handlers;
        handlers.reserve(numHandlers);
        for (unsigned t = 0; t < numHandlers; ++t)
            handlers.push_back(emitHandler(b, structure, t, cont));
        emitJumpTable(b, handlerTable, handlers);

        b.bind(cont);
        b.mov(2, 1); // current token becomes the next context
        // Expression tokens enter the recursive-descent parser
        // (which clobbers r1, so the context is saved first).
        b.andi(9, 2, 63);
        b.addi(9, 9, -7);
        Label no_parse = b.newLabel("no_parse");
        b.bnez(9, no_parse);
        b.andi(1, 16, 3);
        b.addi(1, 1, 2); // depth 2..5 from the parser state
        Label parse = b.newLabel("parse");
        b.call(parse);
        b.bind(no_parse);

        b.addi(5, 5, 1);
        b.br(loop);

        emitParser(b, parse);
        b.halt();

        return b.build();
    }

  private:
    /**
     * Recursive-descent parser: parse(depth) consumes pseudo-tokens
     * and recurses on one or two children while depth > 0.
     */
    static void
    emitParser(ProgramBuilder &b, Label parse)
    {
        b.bind(parse);
        Label leaf = b.newLabel("parse_leaf");
        b.beqz(1, leaf);
        // push depth; parse(depth - 1)
        emitPush(b, 1);
        b.addi(1, 1, -1);
        b.call(parse);
        emitPop(b, 1);
        // Second child when the parser state is odd (deterministic in
        // the token stream, so history predictors can learn it).
        b.andi(7, 16, 1);
        Label done = b.newLabel("parse_done");
        b.beqz(7, done);
        emitPush(b, 1);
        b.addi(1, 1, -1);
        b.call(parse);
        emitPop(b, 1);
        b.bind(done);
        b.ret();
        b.bind(leaf);
        emitAluRun(b, 2);
        b.ret();
    }

    /**
     * Emit one token handler. Branches test the evolving parser
     * state (r16, r17) and LCG bits with per-handler biases, then
     * update the state; ends at @p cont.
     */
    static Label
    emitHandler(ProgramBuilder &b, Rng &structure, unsigned index,
                Label cont)
    {
        Label entry = b.here(strprintf("h_%u", index));

        unsigned branches =
            2 + static_cast<unsigned>(structure.nextBelow(3));
        for (unsigned i = 0; i < branches; ++i) {
            Label skip = b.newLabel();
            switch (structure.nextBelow(6)) {
              case 0:
              case 1:
              case 2: {
                // Context-patterned: test a bit of the previous token
                // (r2). The token stream is 15/16 pattern-driven, so
                // these outcomes are learnable from history — like a
                // parser branching on what it just saw.
                std::int64_t mask =
                    std::int64_t{1} << structure.nextBelow(10);
                b.andi(9, 2, mask);
                if (structure.nextBool(0.5))
                    b.beqz(9, skip);
                else
                    b.bnez(9, skip);
                b.addi(17, 17, 1);
                break;
              }
              case 3:
              case 4: {
                // Context threshold: previous token class check.
                std::int64_t threshold = static_cast<std::int64_t>(
                    structure.nextBelow(numHandlers));
                b.li(9, threshold);
                if (structure.nextBool(0.5))
                    b.blt(2, 9, skip);
                else
                    b.bge(2, 9, skip);
                b.xori(16, 16, 0x11);
                break;
              }
              default: {
                // Biased noise: p = 1/2^bits of entering the slow
                // path (error handling, rare semantic checks).
                unsigned bits =
                    2 + static_cast<unsigned>(structure.nextBelow(3));
                b.srli(9, 3, 30 + static_cast<std::int64_t>(
                                      structure.nextBelow(20)));
                b.andi(9, 9, (std::int64_t{1} << bits) - 1);
                b.bnez(9, skip);
                b.xori(16, 16, 0x11);
                break;
              }
            }
            b.bind(skip);
        }
        // Fold the token into the parser state.
        b.add(16, 16, 1);
        b.andi(16, 16, 0xffff);
        b.andi(17, 17, 0xffff);
        if (structure.nextBool(0.3))
            emitAluRun(b, 2);
        b.br(cont);
        return entry;
    }
};

} // namespace

const Workload &
gccWorkload()
{
    static GccWorkload workload;
    return workload;
}

} // namespace tl
