#include "workloads/workload.hh"

#include "util/status.hh"

namespace tl
{

Trace
Workload::capture(const std::string &datasetName,
                  std::uint64_t maxConditional) const
{
    isa::Program program = build(dataset(datasetName));
    return isa::captureTraceLimited(program, maxConditional);
}

Trace
Workload::captureTesting(std::uint64_t maxConditional) const
{
    return capture(testingDataset(), maxConditional);
}

Trace
Workload::captureTraining(std::uint64_t maxConditional) const
{
    if (!hasTraining())
        fatal("workload '%s' has no training dataset (Table 2: NA)",
              name().c_str());
    return capture(trainingDataset(), maxConditional);
}

namespace
{

/**
 * A running CPU wrapped with the conditional-branch cap of
 * Trace::appendConditionalLimited(): the record carrying the
 * maxConditional-th conditional branch is the last one emitted, so
 * draining this source reproduces capture() record for record.
 */
class CappedCaptureSource : public TraceSource
{
  public:
    CappedCaptureSource(isa::Program program, std::uint64_t maxConditional)
        : cpu_(std::move(program)), maxConditional_(maxConditional)
    {
    }

    bool
    next(BranchRecord &record) override
    {
        if (conditionalSeen_ >= maxConditional_)
            return false;
        if (!cpu_.next(record))
            return false;
        if (record.isConditional())
            ++conditionalSeen_;
        return true;
    }

  private:
    isa::Cpu cpu_;
    std::uint64_t maxConditional_;
    std::uint64_t conditionalSeen_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
Workload::openCapture(const std::string &datasetName,
                      std::uint64_t maxConditional) const
{
    return std::make_unique<CappedCaptureSource>(
        build(dataset(datasetName)), maxConditional);
}

std::unique_ptr<TraceSource>
Workload::openTestingCapture(std::uint64_t maxConditional) const
{
    return openCapture(testingDataset(), maxConditional);
}

namespace workload_util
{

void
emitArray(isa::ProgramBuilder &builder, std::uint64_t base,
          const std::vector<std::int64_t> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        builder.data(base + i, values[i]);
}

std::vector<std::int64_t>
randomArray(Rng &rng, std::size_t n, std::int64_t lo, std::int64_t hi)
{
    std::vector<std::int64_t> values(n);
    for (std::int64_t &value : values)
        value = rng.nextRange(lo, hi);
    return values;
}

void
emitAluRun(isa::ProgramBuilder &builder, unsigned count)
{
    // Dependent chain over dedicated scratch registers (r27, r28,
    // r30, r31) so interleaved filler never clobbers a workload's
    // live values; r30 accumulates so the work is not trivially dead.
    static constexpr isa::Reg regs[4] = {30, 31, 27, 28};
    for (unsigned i = 0; i < count; ++i) {
        isa::Reg rd = regs[i % 4];
        isa::Reg ra = regs[(i + 1) % 4];
        switch (i % 5) {
          case 0:
            builder.add(rd, rd, ra);
            break;
          case 1:
            builder.xor_(rd, rd, ra);
            break;
          case 2:
            builder.addi(rd, rd, 0x9e37);
            break;
          case 3:
            builder.muli(rd, rd, 6364136223846793005LL);
            break;
          case 4:
            builder.srli(rd, rd, 7);
            break;
        }
    }
}

void
emitPush(isa::ProgramBuilder &builder, isa::Reg reg)
{
    builder.st(reg, 29, 0);
    builder.addi(29, 29, -1);
}

void
emitPop(isa::ProgramBuilder &builder, isa::Reg reg)
{
    builder.addi(29, 29, 1);
    builder.ld(reg, 29, 0);
}

void
emitLcgStep(isa::ProgramBuilder &builder, isa::Reg state)
{
    builder.muli(state, state, 6364136223846793005LL);
    builder.addi(state, state, 1442695040888963407LL);
}

void
emitJumpTable(isa::ProgramBuilder &builder, std::uint64_t tableBase,
              const std::vector<isa::Label> &targets)
{
    for (std::size_t i = 0; i < targets.size(); ++i)
        builder.dataLabel(tableBase + i, targets[i]);
}

void
emitStartupPhase(isa::ProgramBuilder &builder, Rng &structure,
                 unsigned sites, std::uint64_t scratchBase)
{
    // Sixteen configuration words; each bit is set with probability
    // ~0.85, so a `bnez` guard on a random bit is taken-biased.
    for (unsigned word = 0; word < 16; ++word) {
        std::int64_t value = 0;
        for (unsigned bit = 0; bit < 12; ++bit) {
            if (structure.nextBool(0.85))
                value |= std::int64_t{1} << bit;
        }
        builder.data(scratchBase + word, value);
    }

    for (unsigned site = 0; site < sites; ++site) {
        builder.ld(26, 0,
                   static_cast<std::int64_t>(scratchBase +
                                             site % 16));
        builder.andi(26, 26,
                     std::int64_t{1}
                         << structure.nextBelow(12));
        isa::Label skip = builder.newLabel();
        builder.bnez(26, skip); // taken ~85% of the time
        builder.addi(28, 28, 1);
        builder.bind(skip);
    }
}

} // namespace workload_util

} // namespace tl
