/**
 * @file
 * tomcatv: vectorized mesh generation (floating point, 370 static
 * conditional branches in the paper's trace; built-in data, no
 * training set).
 *
 * The model is an iterative 2D stencil: per pass, a sweep over the
 * interior of a 192x192 grid computes a relaxation update (long
 * arithmetic, two nested fixed-trip loops), a residual-limiting
 * branch fires on a spatially patterned minority of cells, and a
 * second sweep applies the correction row by row. Regular,
 * loop-dominated behaviour with a small data-dependent component —
 * high accuracy for every predictor, like the real code.
 */

#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::int64_t gridN = 192;
constexpr std::uint64_t gridX = 0x0000;
constexpr std::uint64_t gridY = 0x10000;
constexpr std::uint64_t rowPattern = 0x20000; // 10-entry residual pattern
constexpr unsigned patternPeriod = 10;

class TomcatvWorkload : public Workload
{
  public:
    std::string name() const override { return "tomcatv"; }
    bool isInteger() const override { return false; }
    std::string testingDataset() const override { return "built-in"; }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "built-in")
            return Dataset{datasetName, 0x70c47, 100};
        fatal("tomcatv: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0x70cba5e);
        Rng dataRng(data.seed);

        // Residual-limit pattern: ~25% of pattern positions trigger
        // the limiting branch. The short period (10) keeps the
        // history windows of reasonable predictors unambiguous, so
        // pattern-based schemes approach the real tomcatv's
        // near-perfect accuracy.
        std::vector<std::int64_t> residual(patternPeriod);
        for (std::int64_t &r : residual)
            r = dataRng.nextBool(0.25) ? 1 : 0;
        emitArray(b, rowPattern, residual);

        // r1 = i, r2 = j, r24 = n-1, r25 = n, r13 = period.
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.li(24, gridN - 1);
        b.li(25, gridN);
        b.li(13, patternPeriod);
        b.li(3, static_cast<std::int64_t>(data.seed | 1));

        emitStartupPhase(b, structure, 364, 0x20010);

        // Initialize the grids once (also a pair of regular loops).
        b.li(1, 0);
        Label init_i = b.here("init_i");
        b.li(2, 0);
        Label init_j = b.here("init_j");
        b.mul(5, 1, 25);
        b.add(5, 5, 2);
        b.add(20, 1, 2);
        b.muli(20, 20, 53);
        b.andi(20, 20, 2047);
        b.st(20, 5, static_cast<std::int64_t>(gridX));
        b.sub(21, 1, 2);
        b.muli(21, 21, 29);
        b.andi(21, 21, 2047);
        b.st(21, 5, static_cast<std::int64_t>(gridY));
        b.addi(2, 2, 1);
        b.blt(2, 25, init_j);
        b.addi(1, 1, 1);
        b.blt(1, 25, init_i);

        Label outer = b.here("relax_pass");

        // --- stencil sweep over the interior ------------------------
        b.li(1, 1);
        Label sw_i = b.here("sweep_i");
        b.li(2, 1);
        Label sw_j = b.here("sweep_j");
        b.mul(5, 1, 25);
        b.add(5, 5, 2); // center index
        b.ld(20, 5, static_cast<std::int64_t>(gridX) - 1); // west
        b.ld(21, 5, static_cast<std::int64_t>(gridX) + 1); // east
        b.ld(22, 5,
             static_cast<std::int64_t>(gridX) - gridN); // north
        b.ld(23, 5,
             static_cast<std::int64_t>(gridX) + gridN); // south
        b.add(20, 20, 21);
        b.add(20, 20, 22);
        b.add(20, 20, 23);
        b.srli(20, 20, 2); // average
        emitAluRun(b, 6);

        // Residual limiting: patterned by (i + j) mod period.
        b.add(7, 1, 2);
        b.rem(7, 7, 13);
        b.ld(8, 7, static_cast<std::int64_t>(rowPattern));
        Label no_limit = b.newLabel("no_limit");
        b.beqz(8, no_limit);
        b.addi(20, 20, -3);
        emitAluRun(b, 2);
        b.bind(no_limit);

        b.andi(20, 20, 2047);
        b.st(20, 5, static_cast<std::int64_t>(gridY));
        b.addi(2, 2, 1);
        b.blt(2, 24, sw_j);
        b.addi(1, 1, 1);
        b.blt(1, 24, sw_i);

        // --- correction sweep: copy Y back into X row by row -------
        b.li(1, 1);
        Label cp_i = b.here("copy_i");
        b.li(2, 1);
        Label cp_j = b.here("copy_j");
        b.mul(5, 1, 25);
        b.add(5, 5, 2);
        b.ld(20, 5, static_cast<std::int64_t>(gridY));
        b.st(20, 5, static_cast<std::int64_t>(gridX));
        b.addi(2, 2, 1);
        b.blt(2, 24, cp_j);
        b.addi(1, 1, 1);
        b.blt(1, 24, cp_i);

        b.addi(10, 10, 1);
        b.br(outer);
        b.halt();

        return b.build();
    }
};

} // namespace

const Workload &
tomcatvWorkload()
{
    static TomcatvWorkload workload;
    return workload;
}

} // namespace tl
