/**
 * @file
 * li (xlisp): a small Lisp interpreter (integer, 489 static
 * conditional branches in the paper's trace; training input "tower of
 * hanoi", testing input "eight queens").
 *
 * The interpreter's input program is *data*, so this model carries
 * both kernels in one binary and the dataset selects which one runs —
 * mirroring how the same xlisp executable traces differently on the
 * two scripts:
 *
 *  - tower of hanoi: clean binary recursion, highly regular;
 *  - eight queens: recursive backtracking with data-dependent
 *    conflict-check loops (a per-pass "forbidden square" varies the
 *    search tree between passes).
 *
 * Interpreter flavour comes from a cons-cell allocator with a
 * wrap-around check, a mark/sweep pass over the heap, and a 64-way
 * eval dispatch over heap cells.
 */

#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t modeFlag = 0x500;   // 0 = hanoi, 1 = queens
constexpr std::uint64_t seedAddr = 0x501;   // LCG seed input word
constexpr std::uint64_t boardCols = 0x600;  // queens: col[row]
constexpr std::uint64_t forbidRow = 0x608;
constexpr std::uint64_t forbidCol = 0x609;
constexpr std::uint64_t heapPtr = 0x700;
constexpr std::uint64_t heapBase = 0x800;
constexpr std::int64_t heapSize = 1024;
constexpr std::uint64_t evalTable = 0x1800; // 64 eval op addresses
constexpr unsigned numEvalOps = 64;

class LiWorkload : public Workload
{
  public:
    std::string name() const override { return "li"; }
    bool isInteger() const override { return true; }
    std::string testingDataset() const override
    {
        return "eight queens";
    }
    std::string trainingDataset() const override
    {
        return "tower of hanoi";
    }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "eight queens")
            return Dataset{datasetName, 0x8fee25, 100};
        if (datasetName == "tower of hanoi")
            return Dataset{datasetName, 0x704a01, 60};
        fatal("li: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0x115b);

        bool queens_mode = data.name == "eight queens";
        b.data(modeFlag, queens_mode ? 1 : 0);

        // r3 = LCG, r10 = pass counter, r17 = solution/move counter,
        // r29 = stack pointer.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));

        emitStartupPhase(b, structure, 380, 0x520);

        Label hanoi = b.newLabel("hanoi");
        Label queens = b.newLabel("queens");
        Label alloc = b.newLabel("alloc");
        Label gc = b.newLabel("gc");
        Label eval = b.newLabel("eval");

        Label outer = b.here("outer");
        // The interpreter's eval/GC machinery runs at the top of each
        // pass (and gc again from the search, below), so interpreter
        // and kernel branches interleave as in the real xlisp.
        b.call(eval);
        b.call(gc);
        b.ld(1, 0, static_cast<std::int64_t>(modeFlag));
        Label do_hanoi = b.newLabel("do_hanoi");
        Label kernels_done = b.newLabel("kernels_done");
        b.beqz(1, do_hanoi);

        // Eight queens: each pass searches one top-level subtree
        // (queen 0 fixed to column pass mod 8, as an interactive
        // session would re-evaluate piecewise) with a rotating
        // forbidden square varying the tree between passes.
        b.andi(7, 10, 7);
        b.st(7, 0, static_cast<std::int64_t>(boardCols)); // col[0]
        b.addi(7, 10, 3);
        b.andi(7, 7, 7);
        b.st(7, 0, static_cast<std::int64_t>(forbidRow));
        b.muli(7, 10, 5);
        b.andi(7, 7, 7);
        b.st(7, 0, static_cast<std::int64_t>(forbidCol));
        b.li(1, 1); // search from row 1
        b.call(queens);
        b.br(kernels_done);

        b.bind(do_hanoi);
        b.li(1, 9); // 9 discs: 2^9 - 1 moves per pass
        b.call(hanoi);

        b.bind(kernels_done);
        b.addi(10, 10, 1);
        b.br(outer);

        emitHanoi(b, hanoi, alloc);
        emitQueens(b, queens, alloc, gc);
        emitAlloc(b, alloc);
        emitGc(b, gc);
        emitEval(b, structure, eval);
        b.halt();

        return b.build();
    }

  private:
    /** hanoi(n in r1): binary recursion, allocating a cell per move. */
    static void
    emitHanoi(ProgramBuilder &b, Label hanoi, Label alloc)
    {
        b.bind(hanoi);
        Label base = b.newLabel("hanoi_base");
        b.beqz(1, base);
        emitPush(b, 1);
        b.addi(1, 1, -1);
        b.call(hanoi);
        emitPop(b, 1);
        b.addi(17, 17, 1); // record the move
        b.call(alloc);
        emitPush(b, 1);
        b.addi(1, 1, -1);
        b.call(hanoi);
        emitPop(b, 1);
        b.ret();
        b.bind(base);
        b.ret();
    }

    /** queens(row in r1): recursive backtracking over an 8x8 board. */
    static void
    emitQueens(ProgramBuilder &b, Label queens, Label alloc,
               Label gcEntry)
    {
        b.bind(queens);
        Label found = b.newLabel("q_found");
        Label try_col = b.newLabel("q_try");
        Label next_col = b.newLabel("q_next");
        Label not_forbidden = b.newLabel("q_notforb");
        Label check = b.newLabel("q_chk");
        Label safe = b.newLabel("q_safe");
        Label done = b.newLabel("q_done");

        b.li(20, 8);
        b.beq(1, 20, found); // row == 8: a solution
        b.li(2, 0);          // col = 0

        b.bind(try_col);
        // Skip the pass-dependent forbidden square.
        b.ld(21, 0, static_cast<std::int64_t>(forbidRow));
        b.bne(1, 21, not_forbidden);
        b.ld(21, 0, static_cast<std::int64_t>(forbidCol));
        b.beq(2, 21, next_col);
        b.bind(not_forbidden);

        // Conflict check against rows 0..row-1 (do-while with a
        // backward, mostly-taken loop branch).
        b.li(4, 0);
        b.beqz(1, safe); // row 0 has nothing to conflict with
        b.bind(check);
        b.ld(5, 4, static_cast<std::int64_t>(boardCols));
        // Interpreter-style type checks on the fetched cell: the tag
        // bits of a small fixnum are always clear, so these branches
        // are as regular as xlisp's ubiquitous type dispatches.
        b.andi(6, 5, 0x700);
        Label fixnum = b.newLabel("q_fixnum");
        b.beqz(6, fixnum); // always taken: it is a fixnum
        b.addi(17, 17, 1); // (boxed path, never executed)
        b.bind(fixnum);
        b.andi(6, 2, 0x700);
        Label fixnum2 = b.newLabel("q_fixnum2");
        b.beqz(6, fixnum2);
        b.addi(17, 17, 1);
        b.bind(fixnum2);
        b.li(6, 64);
        Label small = b.newLabel("q_small");
        b.blt(5, 6, small); // always taken: columns are small ints
        b.addi(17, 17, 1);
        b.bind(small);
        b.beq(5, 2, next_col); // same column
        // |col[j] - col| without a branch (sign-select).
        b.sub(6, 5, 2);
        b.slt(7, 6, 0);
        b.muli(7, 7, -2);
        b.addi(7, 7, 1); // +1 or -1
        b.mul(6, 6, 7);
        b.sub(7, 1, 4);
        b.beq(6, 7, next_col); // same diagonal
        b.addi(4, 4, 1);
        b.blt(4, 1, check);

        b.bind(safe);
        b.st(2, 1, static_cast<std::int64_t>(boardCols));
        b.call(alloc); // cons the placement
        emitPush(b, 1);
        emitPush(b, 2);
        b.addi(1, 1, 1);
        b.call(queens);
        emitPop(b, 2);
        emitPop(b, 1);

        b.bind(next_col);
        b.addi(2, 2, 1);
        b.li(20, 8);
        b.blt(2, 20, try_col);
        b.br(done);

        b.bind(found);
        b.addi(17, 17, 1);
        // Every 16th solution triggers a collection, interleaving GC
        // branches with the search.
        b.andi(20, 17, 15);
        Label no_gc = b.newLabel("q_no_gc");
        b.bnez(20, no_gc);
        b.call(gcEntry);
        b.bind(no_gc);
        b.bind(done);
        b.ret();
    }

    /** alloc: bump allocator with a wrap-around (heap-full) check. */
    static void
    emitAlloc(ProgramBuilder &b, Label alloc)
    {
        b.bind(alloc);
        Label ok = b.newLabel("alloc_ok");
        b.ld(26, 0, static_cast<std::int64_t>(heapPtr));
        b.addi(26, 26, 1);
        b.li(27, heapSize);
        b.blt(26, 27, ok);
        b.li(26, 0); // heap full: wrap (the "collection")
        b.bind(ok);
        b.st(26, 0, static_cast<std::int64_t>(heapPtr));
        b.add(27, 26, 17);
        b.st(27, 26, static_cast<std::int64_t>(heapBase)); // cell value
        b.ret();
    }

    /** gc: mark/sweep-style scan clearing odd-tagged cells. */
    static void
    emitGc(ProgramBuilder &b, Label gc)
    {
        b.bind(gc);
        Label loop = b.newLabel("gc_loop");
        Label skip = b.newLabel("gc_skip");
        b.li(26, 0);
        b.li(28, heapSize);
        b.bind(loop);
        b.ld(27, 26, static_cast<std::int64_t>(heapBase));
        b.andi(27, 27, 1);
        b.beqz(27, skip);
        b.st(0, 26, static_cast<std::int64_t>(heapBase));
        b.bind(skip);
        b.addi(26, 26, 1);
        b.blt(26, 28, loop);
        b.ret();
    }

    /**
     * eval: dispatch over the first 256 heap cells to 64 generated
     * "bytecode" blocks (the interpreter's eval loop).
     */
    static void
    emitEval(ProgramBuilder &b, Rng &structure, Label eval)
    {
        b.bind(eval);
        Label loop = b.newLabel("eval_loop");
        Label cont = b.newLabel("eval_cont");
        b.li(26, 0);
        b.li(28, 256);
        b.bind(loop);
        b.ld(1, 26, static_cast<std::int64_t>(heapBase));
        b.andi(7, 1, numEvalOps - 1);
        b.ld(8, 7, static_cast<std::int64_t>(evalTable));
        b.jr(8);

        std::vector<Label> ops;
        ops.reserve(numEvalOps);
        for (unsigned t = 0; t < numEvalOps; ++t) {
            Label entry = b.here(strprintf("ev_%u", t));
            Label skip = b.newLabel();
            // One or two branches per op on the cell value.
            std::int64_t mask =
                std::int64_t{1} << (1 + structure.nextBelow(5));
            b.andi(9, 1, mask);
            if (structure.nextBool(0.5))
                b.beqz(9, skip);
            else
                b.bnez(9, skip);
            b.addi(17, 17, 1);
            b.bind(skip);
            if (structure.nextBool(0.4)) {
                Label skip2 = b.newLabel();
                b.li(9, static_cast<std::int64_t>(
                            structure.nextBelow(64)));
                b.ble(1, 9, skip2);
                b.xori(17, 17, 5);
                b.bind(skip2);
            }
            b.br(cont);
            ops.push_back(entry);
        }
        emitJumpTable(b, evalTable, ops);

        b.bind(cont);
        b.addi(26, 26, 1);
        b.blt(26, 28, loop); // backward, taken 255/256
        b.ret();
    }
};

} // namespace

const Workload &
liWorkload()
{
    static LiWorkload workload;
    return workload;
}

} // namespace tl
