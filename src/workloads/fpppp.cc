/**
 * @file
 * fpppp: two-electron integral derivatives (floating point, 653
 * static conditional branches in the paper's trace; testing data
 * "natoms", no training set).
 *
 * The real benchmark is famous for enormous basic blocks and very few,
 * very regular branches — every predictor does well on it. The model
 * runs 48 generated integral blocks per atom pair, each a long
 * arithmetic run guarded by a branch that goes one way ~99% of the
 * time (a screening test against a large cutoff), under regular
 * fixed-trip loops. Branch density is a few percent of instructions,
 * matching Section 4.1's floating point numbers.
 */

#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t pairData = 0x0000; // per-pair magnitudes
constexpr unsigned numPairs = 32;
constexpr unsigned numBlocks = 48;

class FppppWorkload : public Workload
{
  public:
    std::string name() const override { return "fpppp"; }
    bool isInteger() const override { return false; }
    std::string testingDataset() const override { return "natoms"; }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "natoms")
            return Dataset{datasetName, 0xf9999, 100};
        fatal("fpppp: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0xf9f9f);
        Rng dataRng(data.seed);

        // Pair magnitudes: almost all well above the negligibility
        // cutoffs; a few pairs are tiny and get screened out (the
        // rare taken path of the screening branches).
        std::vector<std::int64_t> magnitudes(numPairs);
        for (std::size_t i = 0; i < magnitudes.size(); ++i) {
            bool tiny = dataRng.nextBool(0.03);
            magnitudes[i] = tiny ? dataRng.nextRange(0, 500)
                                 : 1000 + dataRng.nextRange(0, 3000);
        }
        emitArray(b, pairData, magnitudes);

        // r5 = pair index, r6 = #pairs, r19 = pair magnitude.
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.li(6, numPairs);

        emitStartupPhase(b, structure, 602, 0x100);

        Label normalize = b.newLabel("normalize");

        Label outer = b.here("scf_pass");
        b.li(5, 0);
        Label pair_loop = b.here("pair_loop");
        b.ld(19, 5, static_cast<std::int64_t>(pairData));

        // The integral blocks are inlined straight-line code — the
        // signature fpppp shape is enormous basic blocks, not calls.
        for (unsigned blk = 0; blk < numBlocks; ++blk)
            emitBlock(b, structure);

        // Contraction: a long-trip accumulation loop per pair (the
        // loop-dominated, almost-always-taken side of fpppp).
        b.li(9, 100);
        Label contract = b.here("contract");
        emitAluRun(b, 3);
        b.addi(9, 9, -1);
        b.bnez(9, contract);

        b.call(normalize); // one small routine per pair
        b.addi(5, 5, 1);
        b.blt(5, 6, pair_loop);
        b.addi(10, 10, 1);
        b.br(outer);

        // normalize: a short fixed-trip accumulation loop.
        b.bind(normalize);
        b.li(9, 6);
        Label norm_loop = b.here("norm_loop");
        emitAluRun(b, 5);
        b.addi(9, 9, -1);
        b.bnez(9, norm_loop);
        b.ret();

        b.halt();

        return b.build();
    }

  private:
    /**
     * One inlined integral block: a screening test against a
     * per-block cutoff (almost always the same direction), then a
     * long arithmetic run.
     */
    static void
    emitBlock(ProgramBuilder &b, Rng &structure)
    {
        Label skip = b.newLabel();
        // Negligibility cutoffs sit below the common magnitudes, so
        // the forward branch is rarely taken (~6%) — BTFN-friendly,
        // like compiled rare-case skips.
        std::int64_t cutoff =
            600 + static_cast<std::int64_t>(structure.nextBelow(300));
        b.li(9, cutoff);
        b.blt(19, 9, skip); // negligible pair: skip this integral
        emitAluRun(b, 40 + static_cast<unsigned>(
                              structure.nextBelow(41)));
        b.bind(skip);
    }
};

} // namespace

const Workload &
fppppWorkload()
{
    static FppppWorkload workload;
    return workload;
}

} // namespace tl
