/**
 * @file
 * matrix300: dense matrix multiply (floating point, 213 static
 * conditional branches in the paper's trace; built-in data, no
 * training set).
 *
 * The real benchmark multiplies 300x300 matrices with SAXPY inner
 * loops; its branches are almost exclusively long-trip loop
 * back-edges, so every predictor scores near-perfectly. The model
 * runs a 192x192 multiply (long inner trips keep the loop-exit
 * misprediction share below ~1%), plus initialization and transpose
 * passes with the same character.
 */

#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::int64_t n = 192; // matrix dimension
constexpr std::uint64_t matA = 0x00000;
constexpr std::uint64_t matB = 0x10000;
constexpr std::uint64_t matC = 0x20000;

class Matrix300Workload : public Workload
{
  public:
    std::string name() const override { return "matrix300"; }
    bool isInteger() const override { return false; }
    std::string testingDataset() const override { return "built-in"; }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "built-in")
            return Dataset{datasetName, 0x300300, 100};
        fatal("matrix300: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0x300ba5e);

        // r1 = i, r2 = j, r4 = k, r5/r6/r7 = addresses,
        // r20..r23 = arithmetic, r24 = n.
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.li(24, n);
        b.li(3, static_cast<std::int64_t>(data.seed | 1));

        emitStartupPhase(b, structure, 208, 0x30000);

        Label outer = b.here("pass");

        // --- initialization: A[i][j] = f(i, j), B = g(i, j) --------
        b.li(1, 0);
        Label init_i = b.here("init_i");
        b.li(2, 0);
        Label init_j = b.here("init_j");
        b.mul(5, 1, 24);
        b.add(5, 5, 2); // i * n + j
        b.add(20, 1, 2);
        b.muli(20, 20, 37);
        b.andi(20, 20, 1023);
        b.st(20, 5, static_cast<std::int64_t>(matA));
        b.sub(21, 1, 2);
        b.muli(21, 21, 17);
        b.andi(21, 21, 1023);
        b.st(21, 5, static_cast<std::int64_t>(matB));
        b.st(0, 5, static_cast<std::int64_t>(matC));
        b.addi(2, 2, 1);
        b.blt(2, 24, init_j);
        b.addi(1, 1, 1);
        b.blt(1, 24, init_i);

        // --- C = A * B in j-k-i order (SAXPY inner loop) ------------
        b.li(2, 0);
        Label mm_j = b.here("mm_j");
        b.li(4, 0);
        Label mm_k = b.here("mm_k");
        // r22 = B[k][j]
        b.mul(6, 4, 24);
        b.add(6, 6, 2);
        b.ld(22, 6, static_cast<std::int64_t>(matB));
        b.li(1, 0);
        Label mm_i = b.here("mm_i");
        // C[i][j] += A[i][k] * B[k][j]
        b.mul(5, 1, 24);
        b.add(7, 5, 4);
        b.ld(20, 7, static_cast<std::int64_t>(matA));
        b.add(7, 5, 2);
        b.ld(21, 7, static_cast<std::int64_t>(matC));
        b.mul(20, 20, 22);
        b.add(21, 21, 20);
        b.st(21, 7, static_cast<std::int64_t>(matC));
        b.addi(1, 1, 1);
        b.blt(1, 24, mm_i);
        b.addi(4, 4, 1);
        b.blt(4, 24, mm_k);
        b.addi(2, 2, 1);
        b.blt(2, 24, mm_j);

        // --- transpose A in place (upper triangle swap) -------------
        b.li(1, 0);
        Label tr_i = b.here("tr_i");
        b.addi(2, 1, 1);
        Label tr_j = b.here("tr_j");
        Label tr_j_end = b.newLabel("tr_j_end");
        b.bge(2, 24, tr_j_end);
        b.mul(5, 1, 24);
        b.add(5, 5, 2);
        b.mul(6, 2, 24);
        b.add(6, 6, 1);
        b.ld(20, 5, static_cast<std::int64_t>(matA));
        b.ld(21, 6, static_cast<std::int64_t>(matA));
        b.st(21, 5, static_cast<std::int64_t>(matA));
        b.st(20, 6, static_cast<std::int64_t>(matA));
        b.addi(2, 2, 1);
        b.br(tr_j);
        b.bind(tr_j_end);
        b.addi(1, 1, 1);
        b.blt(1, 24, tr_i);

        b.addi(10, 10, 1);
        b.br(outer);
        b.halt();

        return b.build();
    }
};

} // namespace

const Workload &
matrix300Workload()
{
    static Matrix300Workload workload;
    return workload;
}

} // namespace tl
