/**
 * @file
 * doduc: Monte Carlo simulation of a nuclear reactor component
 * (floating point, 1149 static conditional branches in the paper's
 * trace — the *irregular* FP benchmark; training data "tiny doducin",
 * testing data "doducin").
 *
 * The model walks a chain of 96 generated "physics routines" per
 * timestep. Each routine reads a few words of the evolving state
 * vector, runs a long fixed-point arithmetic block (FP codes are ~5%
 * branches, Section 4.1) and takes two or three threshold branches
 * whose operands drift with the state — irregular, moderately biased
 * branch behaviour, unlike the loop-dominated FP codes.
 */

#include "workloads/registry.hh"

#include <algorithm>

#include "util/status.hh"

namespace tl
{

namespace
{

using namespace isa;
using namespace workload_util;

constexpr std::uint64_t stateVec = 0x0000;     // 64-word state vector
constexpr std::uint64_t statePattern = 0x200;  // 11-entry refresh pattern
constexpr unsigned stateWords = 64;
constexpr unsigned patternPeriod = 11;
constexpr unsigned numRoutines = 96;
constexpr std::uint64_t seedAddr = 0x250; // LCG seed input word

class DoducWorkload : public Workload
{
  public:
    std::string name() const override { return "doduc"; }
    bool isInteger() const override { return false; }
    std::string testingDataset() const override { return "doducin"; }
    std::string trainingDataset() const override
    {
        return "tiny doducin";
    }

    Dataset
    dataset(const std::string &datasetName) const override
    {
        if (datasetName == "doducin")
            return Dataset{datasetName, 0xd0d001, 100};
        if (datasetName == "tiny doducin")
            return Dataset{datasetName, 0xd0d0ee, 50};
        fatal("doduc: unknown dataset '%s'", datasetName.c_str());
    }

    Program
    build(const Dataset &data) const override
    {
        ProgramBuilder b;
        Rng structure(0xd0d0c);
        Rng dataRng(data.seed);

        // The physics schedule is shared across datasets ("tiny
        // doducin" is a shorter run of the same reactor); the dataset
        // perturbs ~15% of the pattern entries.
        Rng base(0xd0dba5e);
        std::vector<std::int64_t> pattern =
            randomArray(base, patternPeriod, 0, 4095);
        for (std::int64_t &value : pattern) {
            if (dataRng.nextBool(0.15))
                value = dataRng.nextRange(0, 4095);
        }
        emitArray(b, statePattern, pattern);
        emitArray(b, stateVec,
                  randomArray(dataRng, stateWords, 0, 4095));

        // r3 = LCG, r10 = timestep, r13 = period, r18 = scratch
        // index.
        b.data(seedAddr, static_cast<std::int64_t>(data.seed | 1));
        b.li(29, static_cast<std::int64_t>(stackBase));
        b.ld(3, 0, static_cast<std::int64_t>(seedAddr));
        b.li(13, patternPeriod);

        emitStartupPhase(b, structure, 808, 0x260);

        std::vector<Label> routines;
        routines.reserve(numRoutines);
        for (unsigned r = 0; r < numRoutines; ++r)
            routines.push_back(b.newLabel(strprintf("phys_%u", r)));

        Label outer = b.here("timestep");

        // Refresh the whole state vector from the dataset pattern
        // with a timestep-dependent rotation and 1/64 LCG noise: the
        // branch operands stay patterned (period 11 in timesteps)
        // rather than chaotic, while the noise keeps doduc the
        // irregular FP benchmark.
        b.li(5, 0);
        b.li(6, stateWords);
        Label refresh = b.here("refresh");
        b.muli(4, 5, 3);
        b.add(4, 4, 10); // 3*w + t
        b.rem(4, 4, 13);
        b.ld(7, 4, static_cast<std::int64_t>(statePattern));
        emitLcgStep(b, 3);
        b.srli(8, 3, 44);
        b.andi(8, 8, 63);
        Label keep = b.newLabel("refresh_keep");
        b.bnez(8, keep);
        b.srli(7, 3, 20);
        b.andi(7, 7, 4095);
        b.bind(keep);
        b.st(7, 5, static_cast<std::int64_t>(stateVec));
        b.addi(5, 5, 1);
        b.blt(5, 6, refresh);

        // One timestep = the full chain of routines.
        for (unsigned r = 0; r < numRoutines; ++r)
            b.call(routines[r]);

        b.addi(10, 10, 1);
        b.br(outer);

        for (unsigned r = 0; r < numRoutines; ++r)
            emitRoutine(b, structure, routines[r]);
        b.halt();

        return b.build();
    }

  private:
    /**
     * One physics routine: long arithmetic block, then two or three
     * threshold branches over state words chosen at generation time,
     * then a state update.
     */
    static void
    emitRoutine(ProgramBuilder &b, Rng &structure, Label entry)
    {
        b.bind(entry);

        unsigned in_a =
            static_cast<unsigned>(structure.nextBelow(stateWords));
        unsigned in_b =
            static_cast<unsigned>(structure.nextBelow(stateWords));
        unsigned out =
            static_cast<unsigned>(structure.nextBelow(stateWords));

        b.ld(20, 0, static_cast<std::int64_t>(stateVec + in_a));
        b.ld(21, 0, static_cast<std::int64_t>(stateVec + in_b));

        // The FP-heavy block: 16..32 arithmetic instructions.
        emitAluRun(b, 16 + static_cast<unsigned>(
                              structure.nextBelow(17)));

        // A short fixed-trip integration loop (backward branch taken
        // trip-1 times out of trip).
        unsigned trip =
            3 + static_cast<unsigned>(structure.nextBelow(4));
        b.li(18, static_cast<std::int64_t>(trip));
        Label integrate = b.here();
        emitAluRun(b, 4);
        b.addi(18, 18, -1);
        b.bnez(18, integrate);

        unsigned branches =
            2 + static_cast<unsigned>(structure.nextBelow(2));
        for (unsigned i = 0; i < branches; ++i) {
            Label skip = b.newLabel();
            // Threshold near the data median (2048) so the branch is
            // moderately balanced; the exact offset varies per site.
            std::int64_t threshold =
                1024 + static_cast<std::int64_t>(
                           structure.nextBelow(2048));
            b.li(9, threshold);
            Reg operand = structure.nextBool(0.5) ? Reg{20} : Reg{21};
            if (structure.nextBool(0.5))
                b.blt(operand, 9, skip);
            else
                b.bge(operand, 9, skip);
            // Taken work: nudge the state word read next time.
            b.addi(20, 20, 37);
            emitAluRun(b, 2);
            b.bind(skip);
        }

        // Mix and write back (keeps values in [0, 4095]). The mix is
        // a fixed function of patterned inputs, so downstream
        // routines reading this word stay patterned too.
        b.add(22, 20, 21);
        b.xori(22, 22, 0x2b5);
        b.andi(22, 22, 4095);
        b.st(22, 0, static_cast<std::int64_t>(stateVec + out));
        b.ret();
    }
};

} // namespace

const Workload &
doducWorkload()
{
    static DoducWorkload workload;
    return workload;
}

} // namespace tl
