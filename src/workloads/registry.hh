/**
 * @file
 * The nine-benchmark suite (Tables 1 and 2 of the paper): accessors
 * for each workload singleton and the suite in the paper's order
 * (four integer benchmarks, then five floating point benchmarks).
 */

#ifndef TL_WORKLOADS_REGISTRY_HH
#define TL_WORKLOADS_REGISTRY_HH

#include <string_view>
#include <vector>

#include "workloads/workload.hh"

namespace tl
{

/// @name Workload singletons
/// @{
const Workload &eqntottWorkload();
const Workload &espressoWorkload();
const Workload &gccWorkload();
const Workload &liWorkload();
const Workload &doducWorkload();
const Workload &fppppWorkload();
const Workload &matrix300Workload();
const Workload &spice2g6Workload();
const Workload &tomcatvWorkload();
/// @}

/** All nine workloads: integer first, then floating point. */
const std::vector<const Workload *> &allWorkloads();

/** Look a workload up by name; calls fatal() for unknown names. */
const Workload &workloadByName(std::string_view name);

} // namespace tl

#endif // TL_WORKLOADS_REGISTRY_HH
