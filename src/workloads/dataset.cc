#include "workloads/dataset.hh"

#include "util/status.hh"

namespace tl
{

std::string
Dataset::describe() const
{
    return strprintf("%s (seed=%llu, scale=%u)", name.c_str(),
                     static_cast<unsigned long long>(seed), scale);
}

} // namespace tl
