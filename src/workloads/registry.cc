#include "workloads/registry.hh"

#include "util/status.hh"

namespace tl
{

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> workloads = {
        &eqntottWorkload(),  &espressoWorkload(), &gccWorkload(),
        &liWorkload(),       &doducWorkload(),    &fppppWorkload(),
        &matrix300Workload(), &spice2g6Workload(), &tomcatvWorkload(),
    };
    return workloads;
}

const Workload &
workloadByName(std::string_view name)
{
    for (const Workload *workload : allWorkloads()) {
        if (workload->name() == name)
            return *workload;
    }
    fatal("unknown workload '%.*s'", static_cast<int>(name.size()),
          name.data());
}

} // namespace tl
