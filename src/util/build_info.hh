/**
 * @file
 * Build provenance baked in at configure time, so every run manifest
 * (sim/manifest.hh) can record which revision produced it.
 */

#ifndef TL_UTIL_BUILD_INFO_HH
#define TL_UTIL_BUILD_INFO_HH

namespace tl
{

/**
 * The git commit SHA recorded when CMake last configured, or
 * "unknown" outside a git checkout. Configure-time, not build-time:
 * commits made without re-running CMake are not reflected (the
 * manifest also records whether the tree was dirty at configure).
 */
const char *buildGitSha();

/** True when the work tree had uncommitted changes at configure. */
bool buildTreeWasDirty();

} // namespace tl

#endif // TL_UTIL_BUILD_INFO_HH
