/**
 * @file
 * A flat open-addressing hash map keyed by branch addresses — the
 * hot-path replacement for std::unordered_map in the ideal-BHT
 * predictor structures.
 *
 * std::unordered_map costs one heap node per entry and a pointer
 * chase per lookup; for the ideal BHT (two map probes per predicted
 * branch) that indirection dominates the simulation loop. PcMap keeps
 * (key, value) pairs in one contiguous power-of-two array probed
 * linearly from a splitmix64 hash, so a lookup is typically a single
 * cache line touch.
 *
 * Deliberately minimal: insertion and lookup only (the predictors
 * never erase individual branches — a context switch clears the whole
 * table), values must be default-constructible, and iteration is
 * provided as forEach() for the validate() walks. All operations are
 * deterministic functions of the insertion sequence, so sweeps stay
 * byte-identical serial vs. parallel.
 */

#ifndef TL_UTIL_PC_MAP_HH
#define TL_UTIL_PC_MAP_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace tl
{

/** Open-addressing hash map from std::uint64_t keys to V values. */
template <typename V>
class PcMap
{
  public:
    PcMap() = default;

    /** Number of stored entries. */
    std::size_t size() const { return count; }

    /** True when no entries are stored. */
    bool empty() const { return count == 0; }

    /** Drop every entry, keeping the allocated capacity. */
    void
    clear()
    {
        for (Slot &slot : slots)
            slot.occupied = false;
        count = 0;
    }

    /** Pointer to the value of @p key, or nullptr when absent. */
    const V *
    find(std::uint64_t key) const
    {
        if (slots.empty())
            return nullptr;
        std::size_t i = probeStart(key);
        while (slots[i].occupied) {
            if (slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & (slots.size() - 1);
        }
        return nullptr;
    }

    V *
    find(std::uint64_t key)
    {
        return const_cast<V *>(
            static_cast<const PcMap *>(this)->find(key));
    }

    /**
     * Find @p key, inserting a default-constructed value when absent.
     *
     * @return The value pointer (always valid — but invalidated by
     *         the next insertion, like unordered_map under rehash)
     *         and whether an insertion happened.
     */
    std::pair<V *, bool>
    tryEmplace(std::uint64_t key)
    {
        if ((count + 1) * 4 > slots.size() * 3)
            grow();
        std::size_t i = probeStart(key);
        while (slots[i].occupied) {
            if (slots[i].key == key)
                return {&slots[i].value, false};
            i = (i + 1) & (slots.size() - 1);
        }
        slots[i].occupied = true;
        slots[i].key = key;
        slots[i].value = V{};
        ++count;
        return {&slots[i].value, true};
    }

    /** Apply @p fn(key, value) to every entry (table order). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const Slot &slot : slots) {
            if (slot.occupied)
                fn(slot.key, slot.value);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        bool occupied = false;
        V value{};
    };

    /**
     * Fibonacci multiplicative hashing: one multiply, then keep the
     * HIGH bits (the low bits of a multiplicative hash are too
     * regular to index with). A single multiply is a ~3-cycle
     * dependency chain where a full splitmix64 finalizer is ~12; with
     * two probes per predicted branch the difference is visible in
     * end-to-end throughput. Branch addresses are near-arithmetic
     * progressions, which multiplicative hashing by the golden ratio
     * spreads well.
     */
    std::size_t probeStart(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ULL) >> shift);
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(old.empty() ? kInitialSlots : old.size() * 2,
                     Slot{});
        unsigned bits = 0;
        while ((std::size_t{1} << bits) < slots.size())
            ++bits;
        shift = 64 - bits;
        count = 0;
        for (Slot &slot : old) {
            if (!slot.occupied)
                continue;
            std::size_t i = probeStart(slot.key);
            while (slots[i].occupied)
                i = (i + 1) & (slots.size() - 1);
            slots[i].occupied = true;
            slots[i].key = slot.key;
            slots[i].value = std::move(slot.value);
            ++count;
        }
    }

    static constexpr std::size_t kInitialSlots = 64;

    std::vector<Slot> slots;
    std::size_t count = 0;
    unsigned shift = 64; //!< 64 - log2(slots.size()), see probeStart()
};

} // namespace tl

#endif // TL_UTIL_PC_MAP_HH
