#include "util/status_or.hh"

namespace tl
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::CorruptData: return "CorruptData";
      case StatusCode::OutOfRange: return "OutOfRange";
      case StatusCode::IoError: return "IoError";
      case StatusCode::FailedPrecondition: return "FailedPrecondition";
      case StatusCode::Internal: return "Internal";
      case StatusCode::Unavailable: return "Unavailable";
    }
    return "Unknown";
}

bool
isRetryable(StatusCode code)
{
    return code == StatusCode::Unavailable ||
           code == StatusCode::IoError;
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

namespace
{

Status
makeStatus(StatusCode code, const char *fmt, std::va_list args)
{
    return Status(code, vstrprintf(fmt, args));
}

} // namespace

#define TL_DEFINE_STATUS_CTOR(name, code)                               \
    Status name(const char *fmt, ...)                                   \
    {                                                                   \
        std::va_list args;                                              \
        va_start(args, fmt);                                            \
        Status status = makeStatus(StatusCode::code, fmt, args);        \
        va_end(args);                                                   \
        return status;                                                  \
    }

TL_DEFINE_STATUS_CTOR(invalidArgumentError, InvalidArgument)
TL_DEFINE_STATUS_CTOR(notFoundError, NotFound)
TL_DEFINE_STATUS_CTOR(corruptDataError, CorruptData)
TL_DEFINE_STATUS_CTOR(outOfRangeError, OutOfRange)
TL_DEFINE_STATUS_CTOR(ioError, IoError)
TL_DEFINE_STATUS_CTOR(failedPreconditionError, FailedPrecondition)
TL_DEFINE_STATUS_CTOR(internalError, Internal)
TL_DEFINE_STATUS_CTOR(unavailableError, Unavailable)

#undef TL_DEFINE_STATUS_CTOR

} // namespace tl
