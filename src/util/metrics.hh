/**
 * @file
 * A metrics registry for instrumented runs: named counters, gauges
 * and histograms that many threads can feed concurrently without
 * locking the hot path.
 *
 * Each thread that touches a registry gets its own *shard* — a
 * private map of named values. Creating the shard takes the registry
 * mutex once per (thread, registry) pair; every increment after that
 * touches only thread-private memory, so concurrent writers never
 * contend and TSan sees no shared mutable state. snapshot() merges
 * the shards into one deterministic view.
 *
 * Determinism contract (what makes parallel sweeps reproducible):
 *  - counters merge by integer addition — exact and commutative, so
 *    the totals are independent of thread count and scheduling;
 *  - gauges merge by maximum — commutative, order-independent;
 *  - histograms merge bucket-wise (power-of-two buckets) plus
 *    count/sum/min/max — sums of the same value multiset, so counts
 *    and bucket totals are exact; only `sum` is a float fold and the
 *    sweep engine avoids cross-thread float folds by merging per-cell
 *    snapshots in grid order (sim/sweep.cc).
 *
 * snapshot() may run concurrently with shard *creation* but not with
 * in-flight increments: call it only at quiescent points (after a
 * parallelFor barrier, after a pool drained). The sweep engine obeys
 * this; tests/test_metrics_registry.cc checks the merge is exact
 * under the tsan preset.
 *
 * A registry constructed disabled turns every mutation into a no-op
 * and snapshots empty — the "instrumentation off" configuration whose
 * cost must not show up in Release throughput. Simulator hot loops
 * should not even pay the name lookup: predictors tally into plain
 * structs (predictor/counters.hh) and report them here once per run.
 */

#ifndef TL_UTIL_METRICS_HH
#define TL_UTIL_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"

namespace tl
{

/** Merged view of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /**
     * buckets[i] counts samples with floor(log2(max(v, 1))) == i for
     * v >= 1; bucket 0 also absorbs samples below 1.
     */
    static constexpr unsigned numBuckets = 64;
    std::vector<std::uint64_t> buckets; // size numBuckets when count>0

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Merged, deterministic view of a registry. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
};

/** Sharded-per-thread registry of named metrics. */
class MetricsRegistry
{
  public:
    /** @param enabled false turns every mutation into a no-op. */
    explicit MetricsRegistry(bool enabled = true);
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    bool enabled() const { return isEnabled; }

    /** Add @p delta to counter @p name (creates it at zero). */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Record gauge @p name; shards merge by maximum. */
    void gauge(std::string_view name, double value);

    /** Record one histogram sample. */
    void observe(std::string_view name, double value);

    /**
     * Fold a pre-merged snapshot in (counters add, gauges max,
     * histograms merge). The sweep engine uses this to fold per-cell
     * snapshots in deterministic grid order.
     */
    void merge(const MetricsSnapshot &other);

    /**
     * Merge every shard into one deterministic view. Must not race
     * in-flight increments; see the file comment.
     */
    MetricsSnapshot snapshot() const;

  private:
    struct Histogram
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<std::uint64_t> buckets;

        void observe(double value);
        void fold(HistogramSnapshot &into) const;
    };

    struct Shard
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, Histogram> histograms;
    };

    /** The calling thread's shard, created on first use. */
    Shard &localShard();

    bool isEnabled;

    /** Process-unique id; keys the thread-local shard cache. */
    std::uint64_t id;

    /**
     * Guards the shard *vector*, not the entries: each Shard is
     * written only by its owning thread (see localShard()), which is
     * what keeps increments lock-free. snapshot()'s reads of entry
     * contents are safe by the quiescence contract in the file
     * comment, which the analysis cannot express — hence the pointee
     * is not annotated, only the vector.
     */
    mutable Mutex mutex;
    std::vector<std::unique_ptr<Shard>> shards TL_GUARDED_BY(mutex);
};

} // namespace tl

#endif // TL_UTIL_METRICS_HH
