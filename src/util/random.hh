/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the library (synthetic traces, workload
 * datasets) flows through Rng so that experiments are bit-reproducible
 * from a seed. The generator is xorshift64*, which is tiny, fast and
 * has far better statistical behaviour than libc rand().
 */

#ifndef TL_UTIL_RANDOM_HH
#define TL_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace tl
{

/** A small deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    /** Construct from a seed; seed 0 is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. @pre at least one weight is positive.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derive an independent child generator (for sub-streams). */
    Rng fork();

  private:
    std::uint64_t state;
};

} // namespace tl

#endif // TL_UTIL_RANDOM_HH
