/**
 * @file
 * String helpers used by the assembler, the scheme-spec parser and the
 * report formatters.
 */

#ifndef TL_UTIL_STRINGS_HH
#define TL_UTIL_STRINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tl
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** Split on a single character delimiter; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char delim);

/**
 * Split on a delimiter but ignore delimiters nested inside
 * parentheses. Used by the scheme-spec parser, where fields themselves
 * contain parenthesized argument lists.
 */
std::vector<std::string> splitTopLevel(std::string_view text, char delim);

/** Lower-case copy (ASCII). */
std::string toLower(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/**
 * Parse an unsigned decimal integer; empty optional on any
 * non-numeric content or overflow.
 */
std::optional<std::uint64_t> parseU64(std::string_view text);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace tl

#endif // TL_UTIL_STRINGS_HH
