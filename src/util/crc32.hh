/**
 * @file
 * CRC-32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320) used
 * to frame records in the v2 binary trace format. One-shot and
 * incremental interfaces; both are the standard CRC-32 every zip/png
 * tool computes, so trace files can be checked externally.
 */

#ifndef TL_UTIL_CRC32_HH
#define TL_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace tl
{

/** CRC-32 of @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    /** Fold @p size bytes at @p data into the checksum. */
    void update(const void *data, std::size_t size);

    /** Fold a little-endian u32 into the checksum. */
    void updateU32(std::uint32_t value);

    /** Fold a little-endian u64 into the checksum. */
    void updateU64(std::uint64_t value);

    /** The checksum of everything folded in so far. */
    std::uint32_t value() const { return state ^ 0xffffffffu; }

  private:
    std::uint32_t state = 0xffffffffu;
};

} // namespace tl

#endif // TL_UTIL_CRC32_HH
