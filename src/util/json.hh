/**
 * @file
 * A minimal JSON document model for the observability layer: run
 * manifests (sim/manifest.hh) and event-log lines (util/event_log.hh)
 * are built as Json trees and serialized with dump().
 *
 * Deliberately small: construction and serialization only, no parsing
 * (nothing in the library consumes JSON; the tools/ scripts do, with
 * Python's parser). Object keys keep insertion order so serialized output is
 * deterministic and diffs between two runs line up field for field.
 */

#ifndef TL_UTIL_JSON_HH
#define TL_UTIL_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tl
{

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    /** A null value. */
    Json() = default;

    /// @name Leaf constructors
    /// @{
    static Json boolean(bool value);
    static Json number(double value);
    static Json number(std::uint64_t value);
    static Json number(std::int64_t value);
    static Json str(std::string value);
    /// @}

    /** An empty array; fill with push(). */
    static Json array();

    /** An empty object; fill with set(). */
    static Json object();

    /** Append to an array; panic() if this is not an array. */
    Json &push(Json value);

    /**
     * Set a key on an object (insertion order preserved; setting an
     * existing key overwrites in place); panic() if not an object.
     */
    Json &set(std::string key, Json value);

    /// @name Kind queries
    /// @{
    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    /// @}

    /** Array or object element count (0 for leaves). */
    std::size_t size() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 produces one compact line (the event-log format).
     */
    std::string dump(int indent = 2) const;

  private:
    enum class Kind
    {
        Null,
        Bool,
        Double,
        Unsigned,
        Signed,
        String,
        Array,
        Object
    };

    void write(std::string &out, int indent, int depth) const;

    Kind kind = Kind::Null;
    bool boolValue = false;
    double doubleValue = 0.0;
    std::uint64_t unsignedValue = 0;
    std::int64_t signedValue = 0;
    std::string stringValue;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> fields;
};

} // namespace tl

#endif // TL_UTIL_JSON_HH
