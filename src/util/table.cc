#include "util/table.hh"

#include <algorithm>
#include <cctype>

#include "util/status.hh"

namespace tl
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{
    if (this->headers.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size()) {
        panic("TextTable row has %zu cells, expected %zu", cells.size(),
              headers.size());
    }
    rows.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows.push_back(Row{true, {}});
}

std::size_t
TextTable::rowCount() const
{
    std::size_t count = 0;
    for (const Row &row : rows) {
        if (!row.separator)
            ++count;
    }
    return count;
}

namespace
{

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'e' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

std::string
TextTable::toText() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const Row &row : rows) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                line += "  ";
            const std::string &cell = cells[c];
            std::size_t pad = widths[c] - cell.size();
            // Right-align numbers, left-align labels.
            if (looksNumeric(cell))
                line += std::string(pad, ' ') + cell;
            else
                line += cell + std::string(pad, ' ');
        }
        // Strip trailing pad.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::size_t total = headers.size() > 0 ? 2 * (headers.size() - 1) : 0;
    for (std::size_t w : widths)
        total += w;

    std::string out;
    if (!title.empty())
        out += title + "\n";
    out += renderRow(headers);
    out += std::string(total, '-') + "\n";
    for (const Row &row : rows) {
        if (row.separator)
            out += std::string(total, '-') + "\n";
        else
            out += renderRow(row.cells);
    }
    return out;
}

std::string
TextTable::toCsv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"')
                quoted += "\"\"";
            else
                quoted += c;
        }
        quoted += "\"";
        return quoted;
    };

    std::string out;
    for (std::size_t c = 0; c < headers.size(); ++c) {
        if (c)
            out += ',';
        out += escape(headers[c]);
    }
    out += '\n';
    for (const Row &row : rows) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c)
                out += ',';
            out += escape(row.cells[c]);
        }
        out += '\n';
    }
    return out;
}

std::string
TextTable::num(double value, int digits)
{
    return strprintf("%.*f", digits, value);
}

std::string
TextTable::num(std::uint64_t value)
{
    return strprintf("%llu", static_cast<unsigned long long>(value));
}

} // namespace tl
