#include "util/check.hh"

#include <atomic>
#include <cstdarg>

#include "util/status.hh"

namespace tl
{

namespace
{

/** nullptr means "use the default handler" (panic). */
std::atomic<CheckFailureHandler> failureHandler{nullptr};

} // namespace

std::string
CheckFailure::toString() const
{
    std::string rendered =
        strprintf("%s:%d: check failed: %s", file, line, condition);
    if (!message.empty()) {
        rendered += " (";
        rendered += message;
        rendered += ")";
    }
    return rendered;
}

CheckFailureHandler
setCheckFailureHandler(CheckFailureHandler handler)
{
    return failureHandler.exchange(handler);
}

namespace detail
{

namespace
{

void
dispatch(CheckFailure failure)
{
    if (CheckFailureHandler handler = failureHandler.load())
        handler(failure);
    // Either no handler is installed, or the installed one returned
    // normally. A failed check never resumes the caller.
    panic("%s", failure.toString().c_str());
}

} // namespace

void
checkFailed(const char *file, int line, const char *condition)
{
    dispatch(CheckFailure{file, line, condition, std::string()});
}

void
checkFailed(const char *file, int line, const char *condition,
            const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string message = vstrprintf(fmt, args);
    va_end(args);
    dispatch(CheckFailure{file, line, condition, std::move(message)});
}

} // namespace detail

} // namespace tl
