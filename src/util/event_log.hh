/**
 * @file
 * Structured event tracing: a line-per-event JSONL sink for the
 * instrumented sweep (sim/sweep.hh) and anything else that wants a
 * machine-readable timeline.
 *
 * Each emitted event becomes one compact JSON object on its own line:
 *
 *     {"seq": 3, "ts": 0.104512, "event": "cell.done",
 *      "column": "GAg(...)", "workload": "gcc", "wallSeconds": 0.1}
 *
 * `seq` is a per-log monotonic sequence number and `ts` seconds since
 * the log was opened. Writes are serialized by a mutex, so worker
 * threads may emit concurrently; lines are never interleaved. Events
 * are observational: timestamps and ordering across threads are not
 * part of any determinism contract (the reproducible artifacts are
 * the metric totals and result counters, not the timeline).
 *
 * A default-constructed log is disabled; emit() is then a cheap
 * no-op, which lets call sites thread an EventLog* unconditionally.
 */

#ifndef TL_UTIL_EVENT_LOG_HH
#define TL_UTIL_EVENT_LOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"
#include "util/status_or.hh"

namespace tl
{

/**
 * Crash-salvage primitive for JSONL files: the complete (newline-
 * terminated) lines of @p bytes, in order, blanks skipped. A process
 * that dies mid-write tears at most the final line — emit() writes
 * each record with one buffered fputs and flushes — so dropping the
 * unterminated tail recovers every record that was fully written.
 * Shared by the checkpoint reader (sim/checkpoint.hh) and the
 * event-log crash-consistency tests.
 */
[[nodiscard]] std::vector<std::string> salvageJsonlLines(
    std::string_view bytes);

/** One key/value pair of an event. */
struct EventField
{
    enum class Kind
    {
        Str,
        U64,
        Real,
        Bool
    };

    std::string_view key;
    Kind kind = Kind::U64;
    std::string_view text;
    std::uint64_t unsignedValue = 0;
    double realValue = 0.0;
    bool boolValue = false;

    static EventField
    str(std::string_view key, std::string_view value)
    {
        EventField field;
        field.key = key;
        field.kind = Kind::Str;
        field.text = value;
        return field;
    }

    static EventField
    u64(std::string_view key, std::uint64_t value)
    {
        EventField field;
        field.key = key;
        field.unsignedValue = value;
        return field;
    }

    static EventField
    real(std::string_view key, double value)
    {
        EventField field;
        field.key = key;
        field.kind = Kind::Real;
        field.realValue = value;
        return field;
    }

    static EventField
    boolean(std::string_view key, bool value)
    {
        EventField field;
        field.key = key;
        field.kind = Kind::Bool;
        field.boolValue = value;
        return field;
    }
};

/** Thread-safe JSONL event sink. */
class EventLog
{
  public:
    /** A disabled sink: emit() does nothing. */
    EventLog() = default;

    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Open (truncate) @p path and start the clock. Non-OK when the
     * file cannot be created; the log stays disabled then.
     */
    Status open(const std::string &path);

    /** Flush and close; the log becomes disabled. */
    void close();

    bool
    enabled() const
    {
        return active.load(std::memory_order_acquire);
    }

    /** Events written so far. */
    std::uint64_t eventCount() const;

    /** Emit one event line; no-op on a disabled log. */
    void emit(std::string_view event,
              std::initializer_list<EventField> fields);

  private:
    mutable Mutex mutex;

    /**
     * Mirrors `file != nullptr`; written only under `mutex`. Lets
     * emit() on a disabled log stay a cheap wait-free check while
     * keeping every read of the stream itself under the lock (the
     * pre-annotation code read `file` unlocked here, a data race
     * against close()).
     */
    std::atomic<bool> active{false};

    std::FILE *file TL_GUARDED_BY(mutex) = nullptr;
    std::chrono::steady_clock::time_point opened
        TL_GUARDED_BY(mutex);
    std::uint64_t sequence TL_GUARDED_BY(mutex) = 0;
};

} // namespace tl

#endif // TL_UTIL_EVENT_LOG_HH
