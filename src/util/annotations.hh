/**
 * @file
 * Clang Thread Safety Analysis annotations, compiled to nothing on
 * other compilers.
 *
 * The macros below let the locking discipline of the concurrent
 * substrate (util/thread_pool, util/metrics, util/event_log,
 * sim/sweep, sim/supervisor, sim/checkpoint, the WorkloadSuite trace
 * cache) be *stated in the source* and *proved at compile time*:
 * every field that a mutex protects carries TL_GUARDED_BY(mutex), and
 * clang's -Wthread-safety pass rejects any access that does not hold
 * the capability. The CI `thread-safety` job builds with clang and
 * -Wthread-safety -Werror, so a data race that TSan could only catch
 * when a test happened to interleave the right way becomes a compile
 * error on every run.
 *
 * Use the annotated wrappers in util/mutex.hh (tl::Mutex,
 * tl::MutexLock, tl::CondVar) rather than std::mutex — the tl_lint
 * `raw-mutex` rule enforces this for src/. Conventions:
 *
 *   - every shared mutable field:        TL_GUARDED_BY(mutex)
 *   - data reached through a pointer:    TL_PT_GUARDED_BY(mutex)
 *   - private functions assuming a lock: TL_REQUIRES(mutex)
 *   - functions that must NOT hold it:   TL_EXCLUDES(mutex)
 *
 * TL_NO_THREAD_SAFETY_ANALYSIS is the escape hatch for code the
 * analysis cannot follow (e.g. adopting a lock owned elsewhere); each
 * use needs a comment saying why the analysis is wrong there.
 *
 * Follows the attribute set documented in
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
 */

#ifndef TL_UTIL_ANNOTATIONS_HH
#define TL_UTIL_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TL_THREAD_ANNOTATION
#define TL_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define TL_CAPABILITY(x) TL_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define TL_SCOPED_CAPABILITY TL_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding @p x. */
#define TL_GUARDED_BY(x) TL_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is protected by @p x. */
#define TL_PT_GUARDED_BY(x) TL_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the listed capabilities. */
#define TL_REQUIRES(...) \
    TL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (and returns holding). */
#define TL_ACQUIRE(...) \
    TL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define TL_RELEASE(...) \
    TL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires iff it returns @p ... (first arg = success value). */
#define TL_TRY_ACQUIRE(...) \
    TL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define TL_EXCLUDES(...) \
    TL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares a lock-ordering edge: this lock before @p ... */
#define TL_ACQUIRED_BEFORE(...) \
    TL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Declares a lock-ordering edge: this lock after @p ... */
#define TL_ACQUIRED_AFTER(...) \
    TL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define TL_RETURN_CAPABILITY(x) \
    TL_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opt a function out of the analysis. Every use must carry a comment
 * explaining what the analysis cannot see.
 */
#define TL_NO_THREAD_SAFETY_ANALYSIS \
    TL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // TL_UTIL_ANNOTATIONS_HH
