/**
 * @file
 * Plain-text and CSV table rendering for the experiment reports. Every
 * bench binary prints its figure/table through TextTable so the output
 * format is uniform across the repository.
 */

#ifndef TL_UTIL_TABLE_HH
#define TL_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace tl
{

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** Construct with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set the title printed above the table. */
    void setTitle(std::string title) { this->title = std::move(title); }

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows (separators excluded). */
    std::size_t rowCount() const;

    /** Render as aligned text. Numeric-looking cells right-align. */
    std::string toText() const;

    /** Render as CSV (separators omitted, title omitted). */
    std::string toCsv() const;

    /** Format a double with @p digits decimal places. */
    static std::string num(double value, int digits = 2);

    /** Format an unsigned integer. */
    static std::string num(std::uint64_t value);

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::string title;
    std::vector<std::string> headers;
    std::vector<Row> rows;
};

} // namespace tl

#endif // TL_UTIL_TABLE_HH
