/**
 * @file
 * A Chrome trace-event (a.k.a. Perfetto legacy JSON) writer: turn the
 * sweep timeline — cell executions, supervisor retries and timeouts,
 * checkpoint writes — into a `TRACE_<name>.json` file that the
 * Perfetto UI (https://ui.perfetto.dev) or chrome://tracing renders
 * as a per-worker timeline.
 *
 * Only the tiny subset of the trace-event format the sweep needs:
 *
 *  - complete events (ph "X"): a named span with start + duration,
 *    used for sweep cells and checkpoint writes;
 *  - instant events (ph "i"): a point marker, used for retries,
 *    watchdog timeouts and restores;
 *  - metadata events (ph "M"): thread names, so lanes read
 *    "worker 0".."worker N" instead of bare tids.
 *
 * Timestamps and durations are microseconds, per the format. The
 * whole process is pid 1 and worker w maps to tid w + 1 (tid 0 is
 * reserved for process-scope events) — the trace describes the
 * sweep's logical workers, not OS threads. Like the rest of the
 * observability layer this is construction + serialization only;
 * nothing in the library reads trace files back.
 */

#ifndef TL_UTIL_TRACE_EVENT_HH
#define TL_UTIL_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "util/json.hh"
#include "util/status_or.hh"

namespace tl
{

/** Accumulates trace events and serializes the JSON object form. */
class TraceEventWriter
{
  public:
    TraceEventWriter();

    /** The process id all events carry. */
    static constexpr std::uint32_t processId = 1;

    /** The tid of process-scope (no specific worker) events. */
    static constexpr std::uint32_t processTid = 0;

    /** Map a sweep worker index to its trace lane tid. */
    static constexpr std::uint32_t
    workerTid(std::uint32_t worker)
    {
        return worker + 1;
    }

    /**
     * A complete ("X") event: @p name spans [startUs, startUs +
     * durationUs) on lane @p tid under category @p category. Pass
     * detail fields as a JSON object in @p args (a null @p args
     * becomes an empty object).
     */
    void duration(std::string name, std::string category,
                  std::uint32_t tid, std::uint64_t startUs,
                  std::uint64_t durationUs, Json args = Json());

    /** An instant ("i") event at @p timestampUs, thread-scoped. */
    void instant(std::string name, std::string category,
                 std::uint32_t tid, std::uint64_t timestampUs,
                 Json args = Json());

    /** Name lane @p tid (a "thread_name" metadata event). */
    void threadName(std::uint32_t tid, std::string name);

    /** Number of events recorded so far. */
    std::size_t size() const { return count; }

    /** The {"traceEvents": [...], ...} document. */
    Json toJson() const;

    /** Serialize toJson() to @p path (same idiom as RunManifest). */
    Status writeFile(const std::string &path) const;

  private:
    void append(Json event);

    Json events;
    std::size_t count = 0;
};

} // namespace tl

#endif // TL_UTIL_TRACE_EVENT_HH
