/**
 * @file
 * Contract macros: TL_CHECK, TL_DCHECK and TL_INVARIANT.
 *
 * These complement the error taxonomy of util/status.hh and
 * util/status_or.hh: fatal() reports *user* errors, Status/StatusOr
 * report *recoverable input* errors, and the macros here guard against
 * *programming* errors — preconditions and data-structure invariants
 * that can only be false when this library (or an embedder poking at
 * internals) has a bug.
 *
 *  - TL_CHECK(cond, ...)   Always compiled, in every build type. For
 *    cold paths: constructor preconditions, API misuse. On failure the
 *    installed failure handler runs (the default aborts via panic()).
 *  - TL_DCHECK(cond, ...)  Compiled out (condition unevaluated) when
 *    TL_DCHECK_ENABLED is 0 — the Release default. For hot paths:
 *    per-prediction index and state checks that must cost nothing in
 *    measured runs.
 *  - TL_INVARIANT(cond, ...) Same build gating as TL_DCHECK, spelled
 *    differently to mark *object consistency* claims (the body of
 *    validate() self-checks) rather than argument preconditions.
 *
 * All three accept an optional printf-style message after the
 * condition:
 *
 *   TL_CHECK(state < numStates(), "state %u out of range", state);
 *
 * The failure handler is process-global and swappable, so tests can
 * observe failures without dying and embedders can route them into
 * their own reporting. A handler may throw (TL_CHECK sites are not
 * noexcept) or terminate; if it returns normally, panic() runs anyway
 * — a failed check never continues execution.
 */

#ifndef TL_UTIL_CHECK_HH
#define TL_UTIL_CHECK_HH

#include <string>

namespace tl
{

/** Everything known about one failed check. */
struct CheckFailure
{
    /** Source file of the failing TL_CHECK/TL_DCHECK/TL_INVARIANT. */
    const char *file = "";

    /** Source line. */
    int line = 0;

    /** The stringified condition text. */
    const char *condition = "";

    /** The formatted optional message; empty when none was given. */
    std::string message;

    /** "file:line: check failed: cond (message)" rendering. */
    std::string toString() const;
};

/**
 * Receives every failed check. Must not return normally to resume the
 * caller — throw or terminate; a handler that does return falls
 * through to panic().
 */
using CheckFailureHandler = void (*)(const CheckFailure &failure);

/**
 * Install @p handler as the global failure handler and return the
 * previous one. nullptr restores the default (panic). Not intended to
 * be raced with failing checks on other threads.
 */
CheckFailureHandler setCheckFailureHandler(CheckFailureHandler handler);

namespace detail
{

/** Build a CheckFailure and dispatch it to the installed handler. */
void checkFailed(const char *file, int line, const char *condition);

/** @copydoc checkFailed */
void checkFailed(const char *file, int line, const char *condition,
                 const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Swallows arguments of a disabled check without evaluating them. */
template <typename... Args>
inline void
checkSink(Args &&...)
{}

} // namespace detail

} // namespace tl

/**
 * TL_DCHECK_ENABLED gates TL_DCHECK and TL_INVARIANT. It follows
 * NDEBUG (on in Debug builds, off in Release/RelWithDebInfo) unless
 * the build predefines it, e.g. -DTL_DCHECK_ENABLED=1 to debug-check a
 * Release build.
 */
#ifndef TL_DCHECK_ENABLED
#ifdef NDEBUG
#define TL_DCHECK_ENABLED 0
#else
#define TL_DCHECK_ENABLED 1
#endif
#endif

/** Always-on precondition check; see the file comment. */
#define TL_CHECK(cond, ...)                                             \
    do {                                                                \
        if (!(cond)) [[unlikely]] {                                     \
            ::tl::detail::checkFailed(__FILE__, __LINE__,               \
                                      #cond __VA_OPT__(, ) __VA_ARGS__);\
        }                                                               \
    } while (false)

/** @cond internal macro plumbing */
#define TL_DISABLED_CHECK_IMPL(cond, ...)                               \
    do {                                                                \
        /* Never taken: keeps cond's operands "used" (no unused-     */ \
        /* variable warnings) without evaluating them at run time.   */ \
        if (false) {                                                    \
            ::tl::detail::checkSink((cond)__VA_OPT__(, ) __VA_ARGS__);  \
        }                                                               \
    } while (false)
/** @endcond */

#if TL_DCHECK_ENABLED
/** Hot-path check, compiled out of Release; see the file comment. */
#define TL_DCHECK(cond, ...) TL_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
/** Object-invariant check, same gating as TL_DCHECK. */
#define TL_INVARIANT(cond, ...) TL_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define TL_DCHECK(cond, ...)                                            \
    TL_DISABLED_CHECK_IMPL(cond __VA_OPT__(, ) __VA_ARGS__)
#define TL_INVARIANT(cond, ...)                                         \
    TL_DISABLED_CHECK_IMPL(cond __VA_OPT__(, ) __VA_ARGS__)
#endif

#endif // TL_UTIL_CHECK_HH
