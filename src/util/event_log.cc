#include "util/event_log.hh"

#include "util/json.hh"
#include "util/status.hh"

namespace tl
{

EventLog::~EventLog()
{
    close();
}

Status
EventLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
    std::FILE *opened_file = std::fopen(path.c_str(), "w");
    if (!opened_file) {
        return invalidArgumentError("event log: cannot open '%s'",
                                    path.c_str());
    }
    file = opened_file;
    opened = std::chrono::steady_clock::now();
    sequence = 0;
    return Status();
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

void
EventLog::emit(std::string_view event,
               std::initializer_list<EventField> fields)
{
    if (!file)
        return;
    std::lock_guard<std::mutex> lock(mutex);
    if (!file) // closed while we were waiting
        return;

    std::chrono::duration<double> since =
        std::chrono::steady_clock::now() - opened;

    Json line = Json::object();
    line.set("seq", Json::number(sequence));
    line.set("ts", Json::number(since.count()));
    line.set("event", Json::str(std::string(event)));
    for (const EventField &field : fields) {
        Json value;
        switch (field.kind) {
          case EventField::Kind::Str:
            value = Json::str(std::string(field.text));
            break;
          case EventField::Kind::U64:
            value = Json::number(field.unsignedValue);
            break;
          case EventField::Kind::Real:
            value = Json::number(field.realValue);
            break;
          case EventField::Kind::Bool:
            value = Json::boolean(field.boolValue);
            break;
        }
        line.set(std::string(field.key), std::move(value));
    }
    std::string text = line.dump(0);
    std::fputs(text.c_str(), file);
    std::fputc('\n', file);
    ++sequence;
}

} // namespace tl
