#include "util/event_log.hh"

#include "util/json.hh"
#include "util/status.hh"

namespace tl
{

std::vector<std::string>
salvageJsonlLines(std::string_view bytes)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < bytes.size()) {
        std::size_t newline = bytes.find('\n', start);
        if (newline == std::string_view::npos)
            break; // unterminated tail: a torn write, not a record
        std::string_view line = bytes.substr(start, newline - start);
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        if (!line.empty())
            lines.emplace_back(line);
        start = newline + 1;
    }
    return lines;
}

EventLog::~EventLog()
{
    close();
}

Status
EventLog::open(const std::string &path)
{
    MutexLock lock(mutex);
    if (file) {
        std::fclose(file);
        file = nullptr;
        active.store(false, std::memory_order_release);
    }
    std::FILE *opened_file = std::fopen(path.c_str(), "w");
    if (!opened_file) {
        return invalidArgumentError("event log: cannot open '%s'",
                                    path.c_str());
    }
    file = opened_file;
    opened = std::chrono::steady_clock::now();
    sequence = 0;
    active.store(true, std::memory_order_release);
    return Status();
}

void
EventLog::close()
{
    MutexLock lock(mutex);
    if (file) {
        std::fclose(file);
        file = nullptr;
        active.store(false, std::memory_order_release);
    }
}

std::uint64_t
EventLog::eventCount() const
{
    MutexLock lock(mutex);
    return sequence;
}

void
EventLog::emit(std::string_view event,
               std::initializer_list<EventField> fields)
{
    // Wait-free early out for the disabled-log configuration; the
    // authoritative check is `file` under the lock, so a close()
    // racing this emit is a clean no-op, not a write to a dead FILE.
    if (!active.load(std::memory_order_acquire))
        return;
    MutexLock lock(mutex);
    if (!file) // closed while we were waiting
        return;

    std::chrono::duration<double> since =
        std::chrono::steady_clock::now() - opened;

    Json line = Json::object();
    line.set("seq", Json::number(sequence));
    line.set("ts", Json::number(since.count()));
    line.set("event", Json::str(std::string(event)));
    for (const EventField &field : fields) {
        Json value;
        switch (field.kind) {
          case EventField::Kind::Str:
            value = Json::str(std::string(field.text));
            break;
          case EventField::Kind::U64:
            value = Json::number(field.unsignedValue);
            break;
          case EventField::Kind::Real:
            value = Json::number(field.realValue);
            break;
          case EventField::Kind::Bool:
            value = Json::boolean(field.boolValue);
            break;
        }
        line.set(std::string(field.key), std::move(value));
    }
    // One buffered write for record plus terminator, then a flush:
    // after a crash the file holds only whole lines plus at most one
    // torn tail, which salvageJsonlLines() recovers from.
    std::string text = line.dump(0);
    text.push_back('\n');
    std::fputs(text.c_str(), file);
    std::fflush(file);
    ++sequence;
}

} // namespace tl
