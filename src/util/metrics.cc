#include "util/metrics.hh"

#include <atomic>
#include <cmath>
#include <unordered_map>

namespace tl
{

namespace
{

/**
 * Each thread caches (registry id -> shard pointer). Ids are process
 * unique and never reused, so an entry left behind by a destroyed
 * registry is inert: nothing looks that id up again. (The registry
 * owns the shard storage, so the stale pointer is never dereferenced
 * either.)
 */
thread_local std::unordered_map<std::uint64_t, void *> tlsShards;

std::uint64_t
nextRegistryId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

unsigned
bucketOf(double value)
{
    if (value < 2.0)
        return 0;
    int exponent = 0;
    std::frexp(value, &exponent);
    // frexp: value = m * 2^exponent with m in [0.5, 1), so values in
    // [2^i, 2^(i+1)) report exponent i+1.
    unsigned bucket = static_cast<unsigned>(exponent - 1);
    return bucket < HistogramSnapshot::numBuckets
               ? bucket
               : HistogramSnapshot::numBuckets - 1;
}

} // namespace

void
MetricsRegistry::Histogram::observe(double value)
{
    if (buckets.empty())
        buckets.assign(HistogramSnapshot::numBuckets, 0);
    if (count == 0) {
        min = max = value;
    } else {
        if (value < min)
            min = value;
        if (value > max)
            max = value;
    }
    ++count;
    sum += value;
    ++buckets[bucketOf(value)];
}

void
MetricsRegistry::Histogram::fold(HistogramSnapshot &into) const
{
    if (count == 0)
        return;
    if (into.buckets.empty())
        into.buckets.assign(HistogramSnapshot::numBuckets, 0);
    if (into.count == 0) {
        into.min = min;
        into.max = max;
    } else {
        if (min < into.min)
            into.min = min;
        if (max > into.max)
            into.max = max;
    }
    into.count += count;
    into.sum += sum;
    for (unsigned i = 0; i < HistogramSnapshot::numBuckets; ++i)
        into.buckets[i] += buckets[i];
}

MetricsRegistry::MetricsRegistry(bool enabled)
    : isEnabled(enabled), id(nextRegistryId())
{
}

MetricsRegistry::~MetricsRegistry()
{
    // This thread's cache entry would otherwise linger (harmlessly)
    // for the life of the thread; other threads' entries do linger,
    // which is safe because ids are never reused.
    tlsShards.erase(id);
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    auto it = tlsShards.find(id);
    if (it != tlsShards.end())
        return *static_cast<Shard *>(it->second);
    MutexLock lock(mutex);
    shards.push_back(std::make_unique<Shard>());
    Shard *shard = shards.back().get();
    tlsShards.emplace(id, shard);
    return *shard;
}

void
MetricsRegistry::add(std::string_view name, std::uint64_t delta)
{
    if (!isEnabled)
        return;
    localShard().counters[std::string(name)] += delta;
}

void
MetricsRegistry::gauge(std::string_view name, double value)
{
    if (!isEnabled)
        return;
    auto &gauges = localShard().gauges;
    auto [it, inserted] = gauges.emplace(std::string(name), value);
    if (!inserted && value > it->second)
        it->second = value;
}

void
MetricsRegistry::observe(std::string_view name, double value)
{
    if (!isEnabled)
        return;
    localShard().histograms[std::string(name)].observe(value);
}

void
MetricsRegistry::merge(const MetricsSnapshot &other)
{
    if (!isEnabled)
        return;
    Shard &shard = localShard();
    for (const auto &[name, value] : other.counters)
        shard.counters[name] += value;
    for (const auto &[name, value] : other.gauges) {
        auto [it, inserted] = shard.gauges.emplace(name, value);
        if (!inserted && value > it->second)
            it->second = value;
    }
    for (const auto &[name, hist] : other.histograms) {
        Histogram &mine = shard.histograms[name];
        if (hist.count == 0)
            continue;
        if (mine.buckets.empty())
            mine.buckets.assign(HistogramSnapshot::numBuckets, 0);
        if (mine.count == 0) {
            mine.min = hist.min;
            mine.max = hist.max;
        } else {
            if (hist.min < mine.min)
                mine.min = hist.min;
            if (hist.max > mine.max)
                mine.max = hist.max;
        }
        mine.count += hist.count;
        mine.sum += hist.sum;
        for (unsigned i = 0;
             i < HistogramSnapshot::numBuckets && i < hist.buckets.size();
             ++i)
            mine.buckets[i] += hist.buckets[i];
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot merged;
    MutexLock lock(mutex);
    for (const std::unique_ptr<Shard> &shard : shards) {
        for (const auto &[name, value] : shard->counters)
            merged.counters[name] += value;
        for (const auto &[name, value] : shard->gauges) {
            auto [it, inserted] = merged.gauges.emplace(name, value);
            if (!inserted && value > it->second)
                it->second = value;
        }
        for (const auto &[name, hist] : shard->histograms)
            hist.fold(merged.histograms[name]);
    }
    return merged;
}

} // namespace tl
