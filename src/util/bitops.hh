/**
 * @file
 * Bit manipulation helpers used throughout the predictor structures.
 *
 * Everything here is constexpr and header-only; these functions are on
 * the hot path of every table lookup in the simulator.
 */

#ifndef TL_UTIL_BITOPS_HH
#define TL_UTIL_BITOPS_HH

#include <cassert>
#include <cstdint>

namespace tl
{

/**
 * Return a mask with the low @p nbits bits set.
 *
 * @param nbits Number of low bits to set; must be <= 64.
 */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << nbits) - 1);
}

/** Extract bits [lo, lo+len) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned len)
{
    return (value >> lo) & mask(len);
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Floor of log2 of @p value.
 *
 * @pre value > 0.
 */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Ceiling of log2 of @p value (log2 rounded up). @pre value > 0. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPowerOfTwo(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** Smallest power of two >= @p value. @pre value > 0. */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t value)
{
    return std::uint64_t{1} << ceilLog2(value);
}

/** Count of set bits. */
constexpr unsigned
popCount(std::uint64_t value)
{
    unsigned count = 0;
    while (value) {
        value &= value - 1;
        ++count;
    }
    return count;
}

/**
 * Fold a wide value down to @p nbits by XOR-ing successive
 * @p nbits-wide chunks. Used for hashing addresses into small tables.
 */
constexpr std::uint64_t
xorFold(std::uint64_t value, unsigned nbits)
{
    if (nbits == 0)
        return 0;
    if (nbits >= 64)
        return value;
    std::uint64_t folded = 0;
    while (value) {
        folded ^= value & mask(nbits);
        value >>= nbits;
    }
    return folded;
}

} // namespace tl

#endif // TL_UTIL_BITOPS_HH
