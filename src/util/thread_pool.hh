/**
 * @file
 * A small work-stealing thread pool for fanning independent
 * simulation cells out across cores.
 *
 * Each worker owns a deque: the owner pushes and pops at the back
 * (LIFO, cache-warm), idle workers steal from the front of a victim's
 * deque (FIFO, oldest first). External submissions are distributed
 * round-robin; submissions made from inside a worker go to that
 * worker's own deque, the classic work-stealing discipline.
 *
 * Results and exceptions travel through std::future, so callers
 * observe a deterministic completion order regardless of how tasks
 * were scheduled: wait on the futures in the order you submitted.
 *
 * A pool constructed with zero threads runs every task inline in
 * submit() on the calling thread — the serial fallback used when
 * parallelism is disabled — with identical future semantics
 * (exceptions are still captured into the future, not thrown out of
 * submit()).
 */

#ifndef TL_UTIL_THREAD_POOL_HH
#define TL_UTIL_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/annotations.hh"
#include "util/mutex.hh"

namespace tl
{

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. Zero means no workers: submit() then
     * executes tasks inline on the calling thread.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains: blocks until every submitted task has finished. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (0 for an inline pool). */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Enqueue @p task. The returned future becomes ready when the
     * task finishes; an exception escaping the task is rethrown by
     * future::get().
     */
    std::future<void> submit(std::function<void()> task);

    /** std::thread::hardware_concurrency(), never zero. */
    static unsigned hardwareThreads();

    /**
     * Index of the pool worker running the calling thread, or -1 when
     * the caller is not a pool worker (the main thread, an inline
     * pool). Instrumentation uses this to label which worker ran a
     * task; it carries no scheduling guarantees.
     */
    static int currentWorkerIndex();

  private:
    struct Worker
    {
        Mutex mutex;
        std::deque<std::packaged_task<void()>>
            deque TL_GUARDED_BY(mutex);
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, std::packaged_task<void()> &task);
    bool steal(std::size_t self, std::packaged_task<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    Mutex sleepMutex;
    CondVar wake;
    std::atomic<std::size_t> pending{0};
    std::atomic<std::size_t> nextQueue{0};
    bool stopping TL_GUARDED_BY(sleepMutex) = false;
};

/**
 * Run body(0) .. body(count - 1) on @p pool and wait for all of them.
 * Blocks until every iteration finished even when some fail; the
 * first exception (in index order) is then rethrown. With an inline
 * (zero-thread) pool this is a plain serial loop.
 */
void parallelFor(ThreadPool &pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace tl

#endif // TL_UTIL_THREAD_POOL_HH
