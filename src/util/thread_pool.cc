#include "util/thread_pool.hh"

namespace tl
{

namespace
{

/** The pool (if any) the current thread is a worker of. */
thread_local ThreadPool *currentPool = nullptr;
thread_local std::size_t currentWorker = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threadCount)
{
    workers.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(sleepMutex);
        stopping = true;
    }
    wake.notifyAll();
    for (std::thread &thread : threads)
        thread.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

int
ThreadPool::currentWorkerIndex()
{
    return currentPool ? static_cast<int>(currentWorker) : -1;
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();

    if (workers.empty()) {
        // Inline fallback: run on the calling thread right now. The
        // packaged_task still routes an exception into the future.
        packaged();
        return future;
    }

    // A worker submitting keeps the task local (it will pop it LIFO);
    // external submitters spread tasks round-robin.
    std::size_t target =
        currentPool == this
            ? currentWorker
            : nextQueue.fetch_add(1, std::memory_order_relaxed) %
                  workers.size();
    {
        MutexLock lock(workers[target]->mutex);
        workers[target]->deque.push_back(std::move(packaged));
    }
    pending.fetch_add(1, std::memory_order_release);
    {
        // Taking the sleep mutex pairs with the wait loop so a
        // worker checking `pending` cannot miss this submission.
        MutexLock lock(sleepMutex);
    }
    wake.notifyOne();
    return future;
}

bool
ThreadPool::popOwn(std::size_t self, std::packaged_task<void()> &task)
{
    Worker &worker = *workers[self];
    MutexLock lock(worker.mutex);
    if (worker.deque.empty())
        return false;
    task = std::move(worker.deque.back());
    worker.deque.pop_back();
    return true;
}

bool
ThreadPool::steal(std::size_t self, std::packaged_task<void()> &task)
{
    for (std::size_t offset = 1; offset < workers.size(); ++offset) {
        Worker &victim = *workers[(self + offset) % workers.size()];
        MutexLock lock(victim.mutex);
        if (victim.deque.empty())
            continue;
        task = std::move(victim.deque.front());
        victim.deque.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    currentPool = this;
    currentWorker = self;
    for (;;) {
        std::packaged_task<void()> task;
        if (popOwn(self, task) || steal(self, task)) {
            pending.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        MutexLock lock(sleepMutex);
        // Explicit wait loop (not a predicate overload) so the
        // thread-safety analysis sees `stopping` read under its
        // mutex; see util/mutex.hh.
        while (!stopping &&
               pending.load(std::memory_order_acquire) == 0) {
            wake.wait(sleepMutex);
        }
        if (stopping && pending.load(std::memory_order_acquire) == 0)
            return;
    }
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&body, i] { body(i); }));

    std::exception_ptr first;
    for (std::future<void> &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace tl
