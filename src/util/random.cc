#include "util/random.hh"

#include <cassert>

#include "util/status.hh"

namespace tl
{

Rng::Rng(std::uint64_t seed)
    : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
    // Warm the state so that small seeds do not produce small first
    // outputs.
    nextU64();
    nextU64();
}

std::uint64_t
Rng::nextU64()
{
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
    for (;;) {
        std::uint64_t value = nextU64();
        if (value >= threshold)
            return value % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        panic("nextWeighted: all weights are zero");
    double point = nextDouble() * total;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        cumulative += weights[i];
        if (point < cumulative)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(nextU64() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace tl
