/**
 * @file
 * Small statistics helpers: running moments, ratios expressed as
 * percentages, and the geometric means the paper reports ("Tot GMean",
 * "Int GMean", "FP GMean").
 */

#ifndef TL_UTIL_STATS_HH
#define TL_UTIL_STATS_HH

#include <cstdint>
#include <vector>

namespace tl
{

/** Accumulates count/mean/min/max/variance incrementally (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples added. */
    std::uint64_t count() const { return n; }

    /** Mean of the samples (0 if empty). */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample (0 if empty). */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Discard all samples. */
    void reset();

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double s = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Geometric mean of a vector of positive values.
 *
 * Computed in log space for numerical robustness. Returns 0 for an
 * empty vector; values must be positive.
 */
double geometricMean(const std::vector<double> &values);

/** Ratio @p part / @p whole as a percentage; 0 when whole is 0. */
double percent(std::uint64_t part, std::uint64_t whole);

} // namespace tl

#endif // TL_UTIL_STATS_HH
