#include "util/stats.hh"

#include <cmath>

#include "util/status.hh"

namespace tl
{

void
RunningStat::add(double value)
{
    ++n;
    total += value;
    if (n == 1) {
        m = value;
        s = 0.0;
        lo = hi = value;
        return;
    }
    double old_m = m;
    m += (value - old_m) / static_cast<double>(n);
    s += (value - old_m) * (value - m);
    if (value < lo)
        lo = value;
    if (value > hi)
        hi = value;
}

double
RunningStat::variance() const
{
    return n > 1 ? s / static_cast<double>(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geometricMean: non-positive value %g", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percent(std::uint64_t part, std::uint64_t whole)
{
    if (whole == 0)
        return 0.0;
    return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

} // namespace tl
