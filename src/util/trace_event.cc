#include "util/trace_event.hh"

#include <cstdio>
#include <utility>

namespace tl
{

namespace
{

Json
argsOrEmpty(Json args)
{
    return args.isNull() ? Json::object() : std::move(args);
}

} // namespace

TraceEventWriter::TraceEventWriter() : events(Json::array()) {}

void
TraceEventWriter::append(Json event)
{
    ++count;
    events.push(std::move(event));
}

void
TraceEventWriter::duration(std::string name, std::string category,
                           std::uint32_t tid, std::uint64_t startUs,
                           std::uint64_t durationUs, Json args)
{
    Json event = Json::object();
    event.set("name", Json::str(std::move(name)));
    event.set("cat", Json::str(std::move(category)));
    event.set("ph", Json::str("X"));
    event.set("ts", Json::number(startUs));
    event.set("dur", Json::number(durationUs));
    event.set("pid", Json::number(std::uint64_t{processId}));
    event.set("tid", Json::number(std::uint64_t{tid}));
    event.set("args", argsOrEmpty(std::move(args)));
    append(std::move(event));
}

void
TraceEventWriter::instant(std::string name, std::string category,
                          std::uint32_t tid, std::uint64_t timestampUs,
                          Json args)
{
    Json event = Json::object();
    event.set("name", Json::str(std::move(name)));
    event.set("cat", Json::str(std::move(category)));
    event.set("ph", Json::str("i"));
    event.set("s", Json::str("t"));
    event.set("ts", Json::number(timestampUs));
    event.set("pid", Json::number(std::uint64_t{processId}));
    event.set("tid", Json::number(std::uint64_t{tid}));
    event.set("args", argsOrEmpty(std::move(args)));
    append(std::move(event));
}

void
TraceEventWriter::threadName(std::uint32_t tid, std::string name)
{
    Json event = Json::object();
    event.set("name", Json::str("thread_name"));
    event.set("ph", Json::str("M"));
    event.set("pid", Json::number(std::uint64_t{processId}));
    event.set("tid", Json::number(std::uint64_t{tid}));
    Json args = Json::object();
    args.set("name", Json::str(std::move(name)));
    event.set("args", std::move(args));
    append(std::move(event));
}

Json
TraceEventWriter::toJson() const
{
    Json document = Json::object();
    document.set("traceEvents", events);
    document.set("displayTimeUnit", Json::str("ms"));
    return document;
}

Status
TraceEventWriter::writeFile(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        return invalidArgumentError(
            "cannot write trace-event file '%s'", path.c_str());
    }
    std::string text = toJson().dump(2);
    text.push_back('\n');
    std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    inform("wrote %s", path.c_str());
    return Status();
}

} // namespace tl
