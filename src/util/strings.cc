#include "util/strings.hh"

#include <cctype>

namespace tl
{

std::string_view
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::vector<std::string>
splitTopLevel(std::string_view text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    int depth = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || (text[i] == delim && depth == 0)) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
            continue;
        }
        if (text[i] == '(')
            ++depth;
        else if (text[i] == ')')
            --depth;
    }
    return fields;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t>
parseU64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (~std::uint64_t{0} - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    return value;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace tl
