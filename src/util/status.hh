/**
 * @file
 * Error reporting in the gem5 spirit: fatal() for user errors that end
 * the run, panic() for internal invariant violations, warn()/inform()
 * for status output that never stops the run.
 */

#ifndef TL_UTIL_STATUS_HH
#define TL_UTIL_STATUS_HH

#include <cstdarg>
#include <string>

namespace tl
{

/**
 * Terminate with exit(1) because of a user-level error (bad
 * configuration, malformed input). Accepts printf-style formatting.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort because an internal invariant was violated (a bug in this
 * library, never the user's fault). Accepts printf-style formatting.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

} // namespace tl

#endif // TL_UTIL_STATUS_HH
