/**
 * @file
 * Annotated mutex primitives: thin wrappers over std::mutex and
 * std::condition_variable that carry the Clang Thread Safety
 * Analysis capability attributes (util/annotations.hh).
 *
 * All locking in src/ goes through these types (tl_lint rule
 * `raw-mutex`); that is what lets -Wthread-safety prove, at compile
 * time, that every TL_GUARDED_BY field is only touched under its
 * mutex. The wrappers add no state and no extra branches over the
 * std primitives — lock() is std::mutex::lock() after inlining —
 * so annotating a class costs nothing at runtime.
 *
 * Condition waits deliberately have no predicate overload: the
 * analysis cannot see that a predicate lambda runs under the lock,
 * so callers write the classic explicit loop instead, which the
 * analysis understands completely:
 *
 *     MutexLock lock(mutex);
 *     while (!condition)
 *         condVar.wait(mutex);
 */

#ifndef TL_UTIL_MUTEX_HH
#define TL_UTIL_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hh"

namespace tl
{

/** Result of a timed condition wait. */
enum class WaitStatus
{
    NoTimeout, //!< woken by a notify (or spuriously)
    Timeout,   //!< the relative deadline expired
};

/** A std::mutex that is a thread-safety-analysis capability. */
class TL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() TL_ACQUIRE()
    {
        raw.lock();
    }

    void
    unlock() TL_RELEASE()
    {
        raw.unlock();
    }

    [[nodiscard]] bool
    tryLock() TL_TRY_ACQUIRE(true)
    {
        return raw.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex raw;
};

/** RAII lock over a tl::Mutex (the only intended way to lock one). */
class TL_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) TL_ACQUIRE(mutex) : held(mutex)
    {
        held.lock();
    }

    ~MutexLock() TL_RELEASE() { held.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &held;
};

/**
 * Condition variable paired with tl::Mutex. Waits atomically release
 * and reacquire the mutex, exactly like std::condition_variable; the
 * TL_REQUIRES annotations make call sites prove they hold it.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Release @p mutex, sleep until notified (or spuriously woken),
     * reacquire, return. The caller still holds the mutex on return,
     * which is why the analysis state is unchanged across the call.
     */
    void
    wait(Mutex &mutex) TL_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the duration of
        // the wait; release() hands ownership back without
        // unlocking. The analysis treats the capability as held
        // throughout, which matches what the caller observes.
        std::unique_lock<std::mutex> native(mutex.raw,
                                            std::adopt_lock);
        raw.wait(native);
        native.release();
    }

    /** wait() with a relative deadline. */
    template <typename Rep, typename Period>
    WaitStatus
    waitFor(Mutex &mutex,
            const std::chrono::duration<Rep, Period> &timeout)
        TL_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.raw,
                                            std::adopt_lock);
        std::cv_status status = raw.wait_for(native, timeout);
        native.release();
        return status == std::cv_status::timeout
                   ? WaitStatus::Timeout
                   : WaitStatus::NoTimeout;
    }

    void
    notifyOne()
    {
        raw.notify_one();
    }

    void
    notifyAll()
    {
        raw.notify_all();
    }

  private:
    std::condition_variable raw;
};

} // namespace tl

#endif // TL_UTIL_MUTEX_HH
