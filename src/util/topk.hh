/**
 * @file
 * A Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi,
 * "Efficient Computation of Frequent and Top-k Elements in Data
 * Streams"): track the top-K keys of a weighted stream in O(K)
 * memory, with a per-key error bound instead of a silent guess.
 *
 * Guarantees (the ones the attribution layer and its oracle
 * cross-check test rely on):
 *
 *  - every stored count is an over-estimate: true <= count;
 *  - the over-estimate is bounded: count - error <= true;
 *  - exact on small cardinality: while the number of distinct keys
 *    offered never exceeds the capacity, no eviction happens, every
 *    error is zero and every count is the true count
 *    (everEvicted() == false is the machine-checkable witness);
 *  - any key NOT in the sketch has a true count <= minCount().
 *
 * merge() folds two sketches deterministically — a pure function of
 * the two operand *states*, with ties broken by key — so per-cell
 * sketches folded in grid-index order after a parallel barrier
 * produce byte-identical tables for serial and N-thread sweeps,
 * matching the MetricsRegistry harvest contract (util/metrics.hh).
 * Keys absent from one operand are credited that operand's floor
 * (its minCount() when it ever evicted, else 0), which preserves
 * both bounds above across the fold.
 *
 * Single-writer by design, like the predictor tally structs: one
 * sketch per cell, merged at quiescent points. No locks anywhere.
 */

#ifndef TL_UTIL_TOPK_HH
#define TL_UTIL_TOPK_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hh"

namespace tl
{

/** Bounded top-K counter table over keys of type @p Key. */
template <typename Key>
class SpaceSaving
{
  public:
    /** One tracked key with its count and over-estimate bound. */
    struct Entry
    {
        Key key{};

        /** Upper bound on the key's true offered weight. */
        std::uint64_t count = 0;

        /**
         * Over-estimation bound: the count the slot held when this
         * key took it over. true weight >= count - error.
         */
        std::uint64_t error = 0;
    };

    /** @param capacity Maximum keys tracked; must be positive. */
    explicit SpaceSaving(std::size_t capacity) : cap(capacity)
    {
        TL_CHECK(capacity > 0,
                 "SpaceSaving needs a positive capacity");
        slots.reserve(capacity);
        heap.reserve(capacity);
        heapPos.reserve(capacity);
    }

    std::size_t capacity() const { return cap; }

    /** Distinct keys currently tracked (<= capacity()). */
    std::size_t size() const { return slots.size(); }

    /** Total weight offered (and merged) so far. */
    std::uint64_t streamWeight() const { return total; }

    /**
     * False while the sketch is still exact: no key was ever evicted
     * and no merge ever truncated, so every count is a true count.
     */
    bool everEvicted() const { return evicted; }

    /**
     * Smallest tracked count — the upper bound on the true weight of
     * any key NOT in the sketch. 0 while the sketch is empty.
     */
    std::uint64_t
    minCount() const
    {
        return heap.empty() ? 0 : slots[heap.front()].count;
    }

    /** Count @p weight occurrences of @p key. */
    void
    offer(const Key &key, std::uint64_t weight = 1)
    {
        total += weight;
        auto found = byKey.find(key);
        if (found != byKey.end()) {
            slots[found->second].count += weight;
            siftDown(heapPos[found->second]);
            return;
        }
        if (slots.size() < cap) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(slots.size());
            slots.push_back(Entry{key, weight, 0});
            heapPos.push_back(static_cast<std::uint32_t>(heap.size()));
            heap.push_back(slot);
            byKey.emplace(key, slot);
            siftUp(heapPos[slot]);
            return;
        }
        // Classic Space-Saving eviction: the minimum-count key hands
        // its slot (and its count, as the error bound) to the
        // newcomer.
        const std::uint32_t slot = heap.front();
        Entry &entry = slots[slot];
        evicted = true;
        byKey.erase(entry.key);
        entry.error = entry.count;
        entry.count += weight;
        entry.key = key;
        byKey.emplace(key, slot);
        siftDown(0);
    }

    /**
     * The tracked table, sorted by count descending then key
     * ascending — the canonical order every consumer (JSON, merge,
     * tests) sees, so equal sketches serialize identically.
     */
    std::vector<Entry>
    entries() const
    {
        std::vector<Entry> out = slots;
        std::sort(out.begin(), out.end(),
                  [](const Entry &a, const Entry &b) {
                      if (a.count != b.count)
                          return a.count > b.count;
                      return a.key < b.key;
                  });
        return out;
    }

    /**
     * Fold @p other into this sketch (see the file comment for the
     * floor rule and the determinism contract).
     */
    void
    merge(const SpaceSaving &other)
    {
        const std::uint64_t floorMine = evicted ? minCount() : 0;
        const std::uint64_t floorTheirs =
            other.evicted ? other.minCount() : 0;

        std::vector<Entry> merged;
        merged.reserve(slots.size() + other.slots.size());
        for (const Entry &mine : slots) {
            Entry entry = mine;
            auto theirs = other.byKey.find(mine.key);
            if (theirs != other.byKey.end()) {
                entry.count += other.slots[theirs->second].count;
                entry.error += other.slots[theirs->second].error;
            } else {
                entry.count += floorTheirs;
                entry.error += floorTheirs;
            }
            merged.push_back(entry);
        }
        for (const Entry &theirs : other.slots) {
            if (byKey.find(theirs.key) != byKey.end())
                continue;
            Entry entry = theirs;
            entry.count += floorMine;
            entry.error += floorMine;
            merged.push_back(entry);
        }
        std::sort(merged.begin(), merged.end(),
                  [](const Entry &a, const Entry &b) {
                      if (a.count != b.count)
                          return a.count > b.count;
                      return a.key < b.key;
                  });

        evicted = evicted || other.evicted || merged.size() > cap;
        if (merged.size() > cap)
            merged.resize(cap);
        total += other.total;

        slots = std::move(merged);
        byKey.clear();
        heap.clear();
        heapPos.assign(slots.size(), 0);
        for (std::uint32_t slot = 0;
             slot < static_cast<std::uint32_t>(slots.size()); ++slot) {
            byKey.emplace(slots[slot].key, slot);
            heapPos[slot] = static_cast<std::uint32_t>(heap.size());
            heap.push_back(slot);
            siftUp(heapPos[slot]);
        }
    }

  private:
    /** Heap order: by count, ties by key — fully deterministic. */
    bool
    heapLess(std::uint32_t a, std::uint32_t b) const
    {
        if (slots[a].count != slots[b].count)
            return slots[a].count < slots[b].count;
        return slots[a].key < slots[b].key;
    }

    void
    heapSwap(std::size_t i, std::size_t j)
    {
        std::swap(heap[i], heap[j]);
        heapPos[heap[i]] = static_cast<std::uint32_t>(i);
        heapPos[heap[j]] = static_cast<std::uint32_t>(j);
    }

    void
    siftUp(std::size_t at)
    {
        while (at > 0) {
            const std::size_t parent = (at - 1) / 2;
            if (!heapLess(heap[at], heap[parent]))
                return;
            heapSwap(at, parent);
            at = parent;
        }
    }

    void
    siftDown(std::size_t at)
    {
        for (;;) {
            std::size_t least = at;
            const std::size_t left = 2 * at + 1;
            const std::size_t right = 2 * at + 2;
            if (left < heap.size() &&
                heapLess(heap[left], heap[least]))
                least = left;
            if (right < heap.size() &&
                heapLess(heap[right], heap[least]))
                least = right;
            if (least == at)
                return;
            heapSwap(at, least);
            at = least;
        }
    }

    std::size_t cap;
    std::vector<Entry> slots;
    std::vector<std::uint32_t> heap;    //!< slot ids, min at front
    std::vector<std::uint32_t> heapPos; //!< slot -> position in heap
    std::unordered_map<Key, std::uint32_t> byKey;
    std::uint64_t total = 0;
    bool evicted = false;
};

} // namespace tl

#endif // TL_UTIL_TOPK_HH
