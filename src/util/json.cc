#include "util/json.hh"

#include <charconv>
#include <cmath>

#include "util/status.hh"

namespace tl
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

Json
Json::boolean(bool value)
{
    Json json;
    json.kind = Kind::Bool;
    json.boolValue = value;
    return json;
}

Json
Json::number(double value)
{
    Json json;
    json.kind = Kind::Double;
    json.doubleValue = value;
    return json;
}

Json
Json::number(std::uint64_t value)
{
    Json json;
    json.kind = Kind::Unsigned;
    json.unsignedValue = value;
    return json;
}

Json
Json::number(std::int64_t value)
{
    Json json;
    json.kind = Kind::Signed;
    json.signedValue = value;
    return json;
}

Json
Json::str(std::string value)
{
    Json json;
    json.kind = Kind::String;
    json.stringValue = std::move(value);
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind = Kind::Array;
    return json;
}

Json
Json::object()
{
    Json json;
    json.kind = Kind::Object;
    return json;
}

Json &
Json::push(Json value)
{
    if (kind != Kind::Array)
        panic("Json::push on a non-array value");
    items.push_back(std::move(value));
    return *this;
}

Json &
Json::set(std::string key, Json value)
{
    if (kind != Kind::Object)
        panic("Json::set on a non-object value");
    for (auto &[existing, held] : fields) {
        if (existing == key) {
            held = std::move(value);
            return *this;
        }
    }
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    if (kind == Kind::Array)
        return items.size();
    if (kind == Kind::Object)
        return fields.size();
    return 0;
}

namespace
{

void
writeDouble(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buffer[32];
    auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    if (ec != std::errc()) {
        out += "0";
        return;
    }
    out.append(buffer, end);
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // namespace

void
Json::write(std::string &out, int indent, int depth) const
{
    switch (kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolValue ? "true" : "false";
        break;
      case Kind::Double:
        writeDouble(out, doubleValue);
        break;
      case Kind::Unsigned:
        out += strprintf("%llu",
                         static_cast<unsigned long long>(unsignedValue));
        break;
      case Kind::Signed:
        out += strprintf("%lld",
                         static_cast<long long>(signedValue));
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(stringValue);
        out += '"';
        break;
      case Kind::Array:
        if (items.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += indent ? "," : ", ";
            if (indent)
                newlineIndent(out, indent, depth + 1);
            items[i].write(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Kind::Object:
        if (fields.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i)
                out += indent ? "," : ", ";
            if (indent)
                newlineIndent(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(fields[i].first);
            out += "\": ";
            fields[i].second.write(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

} // namespace tl
