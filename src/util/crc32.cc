#include "util/crc32.hh"

#include <array>

namespace tl
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crcTable = makeTable();

} // namespace

void
Crc32::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = state;
    for (std::size_t i = 0; i < size; ++i)
        c = crcTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    state = c;
}

void
Crc32::updateU32(std::uint32_t value)
{
    unsigned char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    update(bytes, 4);
}

void
Crc32::updateU64(std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    update(bytes, 8);
}

std::uint32_t
crc32(const void *data, std::size_t size)
{
    Crc32 crc;
    crc.update(data, size);
    return crc.value();
}

} // namespace tl
