/**
 * @file
 * Recoverable error handling: Status and StatusOr<T>.
 *
 * fatal()/panic() (util/status.hh) terminate the process and remain
 * appropriate for CLI front ends and internal invariant violations.
 * Library code on input-facing paths (trace files, scheme specs,
 * assembly sources) instead reports failures as values so that a
 * long-running embedder can survive one bad input: a Status carries an
 * error code plus a human-readable message, and StatusOr<T> is
 * either a value or the Status explaining why there is none.
 *
 * Conventions:
 *  - Functions that can fail on user input return Status or
 *    StatusOr<T> and never call fatal().
 *  - Accessing the value of a non-OK StatusOr is a programming error
 *    and panics; check ok() (or use valueOr()/the macros) first.
 *  - TL_RETURN_IF_ERROR / TL_ASSIGN_OR_RETURN propagate failures up
 *    a StatusOr-returning call chain without boilerplate.
 */

#ifndef TL_UTIL_STATUS_OR_HH
#define TL_UTIL_STATUS_OR_HH

#include <optional>
#include <string>
#include <utility>

#include "util/status.hh"

namespace tl
{

/** Machine-inspectable classification of a failure. */
enum class StatusCode : std::uint8_t
{
    Ok = 0,
    InvalidArgument, //!< malformed spec string, bad option value
    NotFound,        //!< missing file, unknown workload name
    CorruptData,     //!< failed checksum, bad magic, garbage record
    OutOfRange,      //!< value outside the representable range
    IoError,         //!< the OS refused a read/write/open
    FailedPrecondition, //!< the call is valid but not in this state
    Internal,        //!< a bug in this library surfaced as a Status
    Unavailable,     //!< transient condition; retrying may succeed
};

/** Short stable name ("CorruptData") for a status code. */
[[nodiscard]] const char *statusCodeName(StatusCode code);

/**
 * Whether a failure with this code is worth retrying. The contract
 * the sweep supervisor (sim/supervisor.hh) relies on: Unavailable is
 * transient by definition, and IoError covers OS-level refusals
 * (EINTR, ENOSPC races, NFS hiccups) that frequently clear on a
 * second attempt. Everything else — malformed input, failed
 * checksums, precondition violations, library bugs — is permanent:
 * retrying cannot change the outcome, so callers should degrade
 * instead of burning their retry budget.
 */
[[nodiscard]] bool isRetryable(StatusCode code);

/** An error code plus a human-readable message; default is OK. */
class [[nodiscard]] Status
{
  public:
    /** OK status. */
    Status() = default;

    /** Non-OK constructor. @pre code != StatusCode::Ok. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    /** True when the operation succeeded. */
    [[nodiscard]] bool ok() const { return code_ == StatusCode::Ok; }

    [[nodiscard]] StatusCode code() const { return code_; }

    /** Empty for an OK status. */
    [[nodiscard]] const std::string &message() const { return message_; }

    /** "CorruptData: bad magic" style rendering; "OK" when ok(). */
    [[nodiscard]] std::string toString() const;

    bool operator==(const Status &other) const = default;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/// @name printf-style Status constructors
/// @{
Status invalidArgumentError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status notFoundError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status corruptDataError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status outOfRangeError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status ioError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status failedPreconditionError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status internalError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status unavailableError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
/// @}

/**
 * Either a T or the Status explaining why there is none.
 *
 * Implicitly constructible from both, so StatusOr-returning functions
 * can `return value;` and `return corruptDataError(...);` alike.
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** Wrap a failure. @pre !status.ok() (an OK status panics). */
    StatusOr(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            panic("StatusOr constructed from an OK status");
    }

    /** Wrap a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    /** True when a value is held. */
    [[nodiscard]] bool ok() const { return value_.has_value(); }

    /** The status; OK when a value is held. */
    [[nodiscard]] const Status &status() const { return status_; }

    /// @name Value access; panics when !ok().
    /// @{
    const T &value() const & { return checked(); }
    T &value() & { return checked(); }
    T &&value() && { return std::move(checked()); }
    const T &operator*() const & { return checked(); }
    T &operator*() & { return checked(); }
    T &&operator*() && { return std::move(checked()); }
    const T *operator->() const { return &checked(); }
    T *operator->() { return &checked(); }
    /// @}

    /** The value, or @p fallback when this holds an error. */
    template <typename U>
    T
    valueOr(U &&fallback) const &
    {
        return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
    }

    /** @copydoc valueOr */
    template <typename U>
    T
    valueOr(U &&fallback) &&
    {
        return ok() ? std::move(*value_)
                    : static_cast<T>(std::forward<U>(fallback));
    }

    /**
     * Monadic map: apply @p f to the value, passing a failure through
     * unchanged. @p f returns a plain value.
     */
    template <typename F>
    auto
    transform(F &&f) && -> StatusOr<decltype(f(std::declval<T &&>()))>
    {
        if (!ok())
            return status_;
        return f(std::move(*value_));
    }

    /**
     * Monadic bind: apply @p f (which itself returns a StatusOr) to
     * the value, passing a failure through unchanged.
     */
    template <typename F>
    auto
    andThen(F &&f) && -> decltype(f(std::declval<T &&>()))
    {
        if (!ok())
            return status_;
        return f(std::move(*value_));
    }

  private:
    T &
    checked() const
    {
        if (!value_.has_value()) {
            panic("StatusOr::value() on error: %s",
                  status_.toString().c_str());
        }
        return const_cast<T &>(*value_);
    }

    Status status_;
    mutable std::optional<T> value_;
};

/** @cond internal macro plumbing */
#define TL_STATUS_CONCAT_IMPL(a, b) a##b
#define TL_STATUS_CONCAT(a, b) TL_STATUS_CONCAT_IMPL(a, b)
/** @endcond */

/**
 * Evaluate a Status-returning expression; on failure, return the
 * Status from the enclosing function.
 */
#define TL_RETURN_IF_ERROR(expr)                                        \
    do {                                                                \
        ::tl::Status tl_status_tmp_ = (expr);                           \
        if (!tl_status_tmp_.ok())                                       \
            return tl_status_tmp_;                                      \
    } while (false)

/** @cond internal macro plumbing */
#define TL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                        \
    auto tmp = (expr);                                                  \
    if (!tmp.ok())                                                      \
        return tmp.status();                                            \
    lhs = std::move(tmp).value()
/** @endcond */

/**
 * Evaluate a StatusOr-returning expression; on failure, return its
 * Status from the enclosing function, otherwise assign the value:
 *
 *   TL_ASSIGN_OR_RETURN(Trace trace, tryReadBinaryTrace(in));
 */
#define TL_ASSIGN_OR_RETURN(lhs, expr)                                  \
    TL_ASSIGN_OR_RETURN_IMPL(                                           \
        TL_STATUS_CONCAT(tl_statusor_tmp_, __LINE__), lhs, expr)

} // namespace tl

#endif // TL_UTIL_STATUS_OR_HH
