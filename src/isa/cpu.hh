/**
 * @file
 * The M88-lite interpreter.
 *
 * Cpu executes a Program and doubles as a TraceSource: every call to
 * next() runs instructions until the next control-flow instruction and
 * reports it as a BranchRecord, exactly like the paper's
 * instruction-level tracer feeding the branch prediction simulator.
 */

#ifndef TL_ISA_CPU_HH
#define TL_ISA_CPU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "trace/trace.hh"

namespace tl::isa
{

/** Execution limits and machine configuration. */
struct CpuOptions
{
    /** Data memory size in 64-bit words. */
    std::uint64_t memWords = std::uint64_t{1} << 20;

    /** Stop after this many dynamic instructions (safety net). */
    std::uint64_t maxInstructions = std::uint64_t{1} << 62;

    /** Maximum call nesting before declaring runaway recursion. */
    std::uint64_t maxCallDepth = 1 << 20;
};

/** Interpreter for M88-lite programs; also a branch TraceSource. */
class Cpu : public TraceSource
{
  public:
    /**
     * Construct over a copy of @p program (the Cpu owns its program,
     * so temporaries are safe to pass).
     */
    explicit Cpu(Program prog, CpuOptions options = {});

    /**
     * Execute until the next control-flow instruction.
     *
     * @retval true a branch executed; @p record describes it.
     * @retval false the program halted (or hit the instruction limit)
     *         without executing another branch.
     */
    bool next(BranchRecord &record) override;

    /** Run the remaining program, discarding branch records. */
    void run();

    /** True once Halt executed or the instruction limit was reached. */
    bool finished() const { return done; }

    /** True specifically when Halt was executed. */
    bool halted() const { return sawHalt; }

    /** Dynamic instructions executed so far. */
    std::uint64_t instructionsExecuted() const { return instCount; }

    /** Number of Trap instructions executed so far. */
    std::uint64_t trapsExecuted() const { return trapCount; }

    /** Current program counter as a code address. */
    std::uint64_t pcAddress() const { return instAddress(pc); }

    /** Read an architectural register (r0 reads as 0). */
    std::int64_t reg(unsigned index) const;

    /** Write an architectural register (writes to r0 are ignored). */
    void setReg(unsigned index, std::int64_t value);

    /** Read a data memory word. Calls fatal() when out of range. */
    std::int64_t mem(std::uint64_t addr) const;

    /** Write a data memory word. Calls fatal() when out of range. */
    void setMem(std::uint64_t addr, std::int64_t value);

  private:
    /**
     * Execute the instruction at pc.
     *
     * @param record Filled in if the instruction is control flow.
     * @retval true if a branch record was produced.
     */
    bool step(BranchRecord &record);

    void checkMem(std::uint64_t addr, const char *what) const;
    std::size_t targetIndex(std::uint64_t addr, const char *what) const;

    Program program;
    CpuOptions options;

    std::array<std::int64_t, numRegs> regs{};
    std::vector<std::int64_t> memory;
    std::vector<std::size_t> callStack;

    std::size_t pc = 0;
    std::uint64_t instCount = 0;
    std::uint64_t trapCount = 0;
    std::uint32_t instsSinceBranch = 0;
    bool pendingTrap = false;
    bool done = false;
    bool sawHalt = false;
};

/** Convenience: run @p program and capture its whole branch trace. */
Trace captureTrace(const Program &program, CpuOptions options = {});

/**
 * Convenience: run @p program until @p maxConditional conditional
 * branches have been traced (or it halts).
 */
Trace captureTraceLimited(const Program &program,
                          std::uint64_t maxConditional,
                          CpuOptions options = {});

} // namespace tl::isa

#endif // TL_ISA_CPU_HH
