#include "isa/assembler.hh"

#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "util/status.hh"
#include "util/strings.hh"

namespace tl::isa
{

namespace
{

/** Thrown by Assembler::err(); caught at the tryAssemble() boundary. */
struct AsmFailure
{
    Status status;
};

/** Assembler working state: builder plus named labels. */
class Assembler
{
  public:
    Program
    run(std::string_view source)
    {
        std::size_t lineno = 0;
        std::size_t start = 0;
        while (start <= source.size()) {
            std::size_t end = source.find('\n', start);
            if (end == std::string_view::npos)
                end = source.size();
            ++lineno;
            parseLine(source.substr(start, end - start), lineno);
            start = end + 1;
        }
        // Catch undefined labels here, with the referencing line,
        // rather than letting ProgramBuilder::build() fatal().
        for (const auto &[name, label] : labelsByName) {
            if (!boundLabels.count(name)) {
                err(firstLabelUse[name],
                    "label '" + name + "' referenced but never bound");
            }
        }
        return builder.build();
    }

  private:
    [[noreturn]] void
    err(std::size_t lineno, const std::string &message)
    {
        throw AsmFailure{invalidArgumentError(
            "asm line %zu: %s", lineno, message.c_str())};
    }

    Label
    labelByName(const std::string &name, std::size_t lineno)
    {
        auto it = labelsByName.find(name);
        if (it != labelsByName.end())
            return it->second;
        Label label = builder.newLabel(name);
        labelsByName.emplace(name, label);
        firstLabelUse.emplace(name, lineno);
        return label;
    }

    static bool
    isIdentChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '.';
    }

    std::optional<Reg>
    parseReg(std::string_view token)
    {
        if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R'))
            return std::nullopt;
        auto number = parseU64(token.substr(1));
        if (!number || *number >= numRegs)
            return std::nullopt;
        return static_cast<Reg>(*number);
    }

    std::optional<std::int64_t>
    parseImm(std::string_view token)
    {
        if (token.empty())
            return std::nullopt;
        bool negative = token[0] == '-';
        if (negative)
            token.remove_prefix(1);
        if (token.empty())
            return std::nullopt;
        std::uint64_t magnitude = 0;
        if (startsWith(token, "0x") || startsWith(token, "0X")) {
            token.remove_prefix(2);
            if (token.empty())
                return std::nullopt;
            for (char c : token) {
                int digit;
                if (c >= '0' && c <= '9')
                    digit = c - '0';
                else if (c >= 'a' && c <= 'f')
                    digit = c - 'a' + 10;
                else if (c >= 'A' && c <= 'F')
                    digit = c - 'A' + 10;
                else
                    return std::nullopt;
                magnitude = magnitude * 16 +
                            static_cast<std::uint64_t>(digit);
            }
        } else {
            auto value = parseU64(token);
            if (!value)
                return std::nullopt;
            magnitude = *value;
        }
        std::int64_t value = static_cast<std::int64_t>(magnitude);
        return negative ? -value : value;
    }

    std::vector<std::string>
    tokenizeOperands(std::string_view text)
    {
        std::vector<std::string> operands;
        for (const std::string &piece : split(text, ',')) {
            std::string_view trimmed = trim(piece);
            operands.emplace_back(trimmed);
        }
        if (operands.size() == 1 && operands[0].empty())
            operands.clear();
        return operands;
    }

    Reg
    wantReg(const std::vector<std::string> &ops, std::size_t i,
            std::size_t lineno)
    {
        if (i >= ops.size())
            err(lineno, "missing register operand");
        auto reg = parseReg(ops[i]);
        if (!reg)
            err(lineno, "bad register '" + ops[i] + "'");
        return *reg;
    }

    std::int64_t
    wantImm(const std::vector<std::string> &ops, std::size_t i,
            std::size_t lineno)
    {
        if (i >= ops.size())
            err(lineno, "missing immediate operand");
        auto imm = parseImm(ops[i]);
        if (!imm)
            err(lineno, "bad immediate '" + ops[i] + "'");
        return *imm;
    }

    Label
    wantLabel(const std::vector<std::string> &ops, std::size_t i,
              std::size_t lineno)
    {
        if (i >= ops.size())
            err(lineno, "missing label operand");
        const std::string &name = ops[i];
        if (name.empty() ||
            std::isdigit(static_cast<unsigned char>(name[0]))) {
            err(lineno, "bad label '" + name + "'");
        }
        for (char c : name) {
            if (!isIdentChar(c))
                err(lineno, "bad label '" + name + "'");
        }
        return labelByName(name, lineno);
    }

    void
    checkOperandCount(const std::vector<std::string> &ops,
                      std::size_t expected, std::size_t lineno)
    {
        if (ops.size() != expected) {
            err(lineno, strprintf("expected %zu operands, got %zu",
                                  expected, ops.size()));
        }
    }

    void
    parseDirective(std::string_view text, std::size_t lineno)
    {
        std::istringstream stream{std::string(text)};
        std::string directive;
        stream >> directive;
        if (directive == ".data") {
            std::string addr_str, value_str;
            stream >> addr_str >> value_str;
            if (!stream)
                err(lineno, ".data needs an address and a value");
            auto addr = parseImm(addr_str);
            auto value = parseImm(value_str);
            if (!addr || *addr < 0)
                err(lineno, "bad .data address '" + addr_str + "'");
            if (!value)
                err(lineno, "bad .data value '" + value_str + "'");
            builder.data(static_cast<std::uint64_t>(*addr), *value);
        } else if (directive == ".dataLabel") {
            std::string addr_str, label_name;
            stream >> addr_str >> label_name;
            if (!stream)
                err(lineno, ".dataLabel needs an address and a label");
            auto addr = parseImm(addr_str);
            if (!addr || *addr < 0)
                err(lineno, "bad .dataLabel address '" + addr_str + "'");
            builder.dataLabel(static_cast<std::uint64_t>(*addr),
                              labelByName(label_name, lineno));
        } else {
            err(lineno, "unknown directive '" + directive + "'");
        }
    }

    void
    parseInstruction(std::string_view text, std::size_t lineno)
    {
        std::size_t space = 0;
        while (space < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[space]))) {
            ++space;
        }
        std::string mnemonic = toLower(text.substr(0, space));
        std::vector<std::string> ops =
            tokenizeOperands(trim(text.substr(space)));

        auto reg3 = [&](auto emit) {
            checkOperandCount(ops, 3, lineno);
            Reg rd = wantReg(ops, 0, lineno);
            Reg ra = wantReg(ops, 1, lineno);
            Reg rb = wantReg(ops, 2, lineno);
            emit(rd, ra, rb);
        };
        auto regRegImm = [&](auto emit) {
            checkOperandCount(ops, 3, lineno);
            Reg rd = wantReg(ops, 0, lineno);
            Reg ra = wantReg(ops, 1, lineno);
            std::int64_t imm = wantImm(ops, 2, lineno);
            emit(rd, ra, imm);
        };
        auto branch = [&](auto emit) {
            checkOperandCount(ops, 3, lineno);
            Reg ra = wantReg(ops, 0, lineno);
            Reg rb = wantReg(ops, 1, lineno);
            Label target = wantLabel(ops, 2, lineno);
            emit(ra, rb, target);
        };

        ProgramBuilder &b = builder;
        if (mnemonic == "add") {
            reg3([&](Reg d, Reg a, Reg c) { b.add(d, a, c); });
        } else if (mnemonic == "sub") {
            reg3([&](Reg d, Reg a, Reg c) { b.sub(d, a, c); });
        } else if (mnemonic == "mul") {
            reg3([&](Reg d, Reg a, Reg c) { b.mul(d, a, c); });
        } else if (mnemonic == "div") {
            reg3([&](Reg d, Reg a, Reg c) { b.div(d, a, c); });
        } else if (mnemonic == "rem") {
            reg3([&](Reg d, Reg a, Reg c) { b.rem(d, a, c); });
        } else if (mnemonic == "and") {
            reg3([&](Reg d, Reg a, Reg c) { b.and_(d, a, c); });
        } else if (mnemonic == "or") {
            reg3([&](Reg d, Reg a, Reg c) { b.or_(d, a, c); });
        } else if (mnemonic == "xor") {
            reg3([&](Reg d, Reg a, Reg c) { b.xor_(d, a, c); });
        } else if (mnemonic == "sll") {
            reg3([&](Reg d, Reg a, Reg c) { b.sll(d, a, c); });
        } else if (mnemonic == "srl") {
            reg3([&](Reg d, Reg a, Reg c) { b.srl(d, a, c); });
        } else if (mnemonic == "sra") {
            reg3([&](Reg d, Reg a, Reg c) { b.sra(d, a, c); });
        } else if (mnemonic == "slt") {
            reg3([&](Reg d, Reg a, Reg c) { b.slt(d, a, c); });
        } else if (mnemonic == "addi") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.addi(d, a, i); });
        } else if (mnemonic == "muli") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.muli(d, a, i); });
        } else if (mnemonic == "andi") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.andi(d, a, i); });
        } else if (mnemonic == "ori") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.ori(d, a, i); });
        } else if (mnemonic == "xori") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.xori(d, a, i); });
        } else if (mnemonic == "slli") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.slli(d, a, i); });
        } else if (mnemonic == "srli") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.srli(d, a, i); });
        } else if (mnemonic == "ld") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.ld(d, a, i); });
        } else if (mnemonic == "st") {
            regRegImm([&](Reg d, Reg a, std::int64_t i) { b.st(d, a, i); });
        } else if (mnemonic == "li") {
            checkOperandCount(ops, 2, lineno);
            Reg rd = wantReg(ops, 0, lineno);
            b.li(rd, wantImm(ops, 1, lineno));
        } else if (mnemonic == "mov") {
            checkOperandCount(ops, 2, lineno);
            Reg rd = wantReg(ops, 0, lineno);
            Reg ra = wantReg(ops, 1, lineno);
            b.mov(rd, ra);
        } else if (mnemonic == "beq") {
            branch([&](Reg a, Reg c, Label t) { b.beq(a, c, t); });
        } else if (mnemonic == "bne") {
            branch([&](Reg a, Reg c, Label t) { b.bne(a, c, t); });
        } else if (mnemonic == "blt") {
            branch([&](Reg a, Reg c, Label t) { b.blt(a, c, t); });
        } else if (mnemonic == "bge") {
            branch([&](Reg a, Reg c, Label t) { b.bge(a, c, t); });
        } else if (mnemonic == "ble") {
            branch([&](Reg a, Reg c, Label t) { b.ble(a, c, t); });
        } else if (mnemonic == "bgt") {
            branch([&](Reg a, Reg c, Label t) { b.bgt(a, c, t); });
        } else if (mnemonic == "beqz") {
            checkOperandCount(ops, 2, lineno);
            Reg ra = wantReg(ops, 0, lineno);
            b.beqz(ra, wantLabel(ops, 1, lineno));
        } else if (mnemonic == "bnez") {
            checkOperandCount(ops, 2, lineno);
            Reg ra = wantReg(ops, 0, lineno);
            b.bnez(ra, wantLabel(ops, 1, lineno));
        } else if (mnemonic == "br") {
            checkOperandCount(ops, 1, lineno);
            b.br(wantLabel(ops, 0, lineno));
        } else if (mnemonic == "call") {
            checkOperandCount(ops, 1, lineno);
            b.call(wantLabel(ops, 0, lineno));
        } else if (mnemonic == "jr") {
            checkOperandCount(ops, 1, lineno);
            b.jr(wantReg(ops, 0, lineno));
        } else if (mnemonic == "ret") {
            checkOperandCount(ops, 0, lineno);
            b.ret();
        } else if (mnemonic == "trap") {
            checkOperandCount(ops, 0, lineno);
            b.trap();
        } else if (mnemonic == "nop") {
            checkOperandCount(ops, 0, lineno);
            b.nop();
        } else if (mnemonic == "halt") {
            checkOperandCount(ops, 0, lineno);
            b.halt();
        } else {
            err(lineno, "unknown mnemonic '" + mnemonic + "'");
        }
    }

    void
    parseLine(std::string_view raw, std::size_t lineno)
    {
        // Strip comments.
        std::size_t comment = raw.find_first_of(";#");
        if (comment != std::string_view::npos)
            raw = raw.substr(0, comment);
        std::string_view line = trim(raw);
        if (line.empty())
            return;

        // Leading "name:" label definitions (possibly several).
        for (;;) {
            std::size_t i = 0;
            while (i < line.size() && isIdentChar(line[i]))
                ++i;
            if (i == 0 || i >= line.size() || line[i] != ':')
                break;
            std::string name(line.substr(0, i));
            Label label = labelByName(name, lineno);
            if (boundLabels.count(name))
                err(lineno, "label '" + name + "' defined twice");
            builder.bind(label);
            boundLabels.insert(name);
            line = trim(line.substr(i + 1));
            if (line.empty())
                return;
        }

        if (line[0] == '.')
            parseDirective(line, lineno);
        else
            parseInstruction(line, lineno);
    }

    ProgramBuilder builder;
    std::map<std::string, Label> labelsByName;
    std::map<std::string, std::size_t> firstLabelUse;
    std::set<std::string> boundLabels;
};

} // namespace

StatusOr<Program>
tryAssemble(std::string_view source)
{
    try {
        Assembler assembler;
        return assembler.run(source);
    } catch (const AsmFailure &failure) {
        return failure.status;
    }
}

StatusOr<Program>
tryAssembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return notFoundError("cannot open assembly file '%s'",
                             path.c_str());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return tryAssemble(buffer.str());
}

Program
assemble(std::string_view source)
{
    StatusOr<Program> program = tryAssemble(source);
    if (!program.ok())
        fatal("%s", program.status().message().c_str());
    return *std::move(program);
}

Program
assembleFile(const std::string &path)
{
    StatusOr<Program> program = tryAssembleFile(path);
    if (!program.ok())
        fatal("%s", program.status().message().c_str());
    return *std::move(program);
}

} // namespace tl::isa
