/**
 * @file
 * Text assembler for the M88-lite ISA.
 *
 * Syntax (one statement per line, ';' or '#' start a comment):
 *
 *     start:                  ; label definition
 *         li   r1, 10
 *     loop:
 *         addi r2, r2, 1
 *         blt  r2, r1, loop   ; registers and a label operand
 *         st   r2, r0, 100
 *         trap
 *         halt
 *     .data 100 42            ; initialize mem[100] = 42
 *     .dataLabel 101 loop     ; mem[101] = address of 'loop'
 *
 * Pseudo-instructions: mov rd, ra / beqz ra, label / bnez ra, label.
 * Immediates accept decimal (optionally negative) and 0x hex.
 */

#ifndef TL_ISA_ASSEMBLER_HH
#define TL_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "isa/program.hh"
#include "util/status_or.hh"

namespace tl::isa
{

/**
 * Assemble source text into a Program.
 *
 * Fails with StatusCode::InvalidArgument and a line-number diagnostic
 * on any syntax error, unknown mnemonic, bad register, or undefined
 * label.
 */
StatusOr<Program> tryAssemble(std::string_view source);

/** Assemble the contents of a file. */
StatusOr<Program> tryAssembleFile(const std::string &path);

/** Shim around tryAssemble(): calls fatal() on failure. */
Program assemble(std::string_view source);

/** Shim around tryAssembleFile(): calls fatal() on failure. */
Program assembleFile(const std::string &path);

} // namespace tl::isa

#endif // TL_ISA_ASSEMBLER_HH
