/**
 * @file
 * Program representation and the ProgramBuilder DSL.
 *
 * Workloads construct their code through ProgramBuilder rather than
 * assembly text: it is type-checked, supports forward label
 * references, and can emit label addresses into initial data memory
 * for jump tables. The text assembler (assembler.hh) produces the
 * same Program type.
 */

#ifndef TL_ISA_PROGRAM_HH
#define TL_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace tl::isa
{

/** A complete executable program: code plus initial data memory. */
struct Program
{
    /** The text segment; instruction i lives at instAddress(i). */
    std::vector<Instruction> code;

    /** Initial data memory: (word address, value) pairs. */
    std::vector<std::pair<std::uint64_t, std::int64_t>> dataInit;

    /** Bound label name -> code address (for diagnostics and tests). */
    std::map<std::string, std::uint64_t> symbols;

    /** Number of instructions. */
    std::size_t size() const { return code.size(); }

    /** Full disassembly listing with addresses and label names. */
    std::string listing() const;

    /** Count of static conditional branch instructions in the code. */
    std::size_t staticConditionalBranches() const;
};

/** An abstract code position, bindable before or after use. */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(std::size_t id) : id(id), valid(true) {}
    std::size_t id = 0;
    bool valid = false;
};

/** Incremental builder for Program with forward-reference labels. */
class ProgramBuilder
{
  public:
    /** Create a fresh (unbound) label. */
    Label newLabel(std::string name = "");

    /** Bind @p label to the current end of code. */
    void bind(Label label);

    /** Create a label bound at the current position. */
    Label here(std::string name = "");

    /// @name ALU register-register
    /// @{
    void add(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Add, rd, ra, rb); }
    void sub(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Sub, rd, ra, rb); }
    void mul(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Mul, rd, ra, rb); }
    void div(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Div, rd, ra, rb); }
    void rem(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Rem, rd, ra, rb); }
    void and_(Reg rd, Reg ra, Reg rb) { emit3(Opcode::And, rd, ra, rb); }
    void or_(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Or, rd, ra, rb); }
    void xor_(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Xor, rd, ra, rb); }
    void sll(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Sll, rd, ra, rb); }
    void srl(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Srl, rd, ra, rb); }
    void sra(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Sra, rd, ra, rb); }
    void slt(Reg rd, Reg ra, Reg rb) { emit3(Opcode::Slt, rd, ra, rb); }
    /// @}

    /// @name ALU register-immediate
    /// @{
    void addi(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Addi, rd, ra, imm); }
    void muli(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Muli, rd, ra, imm); }
    void andi(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Andi, rd, ra, imm); }
    void ori(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Ori, rd, ra, imm); }
    void xori(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Xori, rd, ra, imm); }
    void slli(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Slli, rd, ra, imm); }
    void srli(Reg rd, Reg ra, std::int64_t imm)
    { emitImm(Opcode::Srli, rd, ra, imm); }
    /// @}

    /** rd <- imm. */
    void li(Reg rd, std::int64_t imm);

    /** rd <- ra (pseudo: add rd, ra, r0). */
    void mov(Reg rd, Reg ra) { add(rd, ra, 0); }

    /** rd <- mem[ra + offset]. */
    void ld(Reg rd, Reg ra, std::int64_t offset);

    /** mem[ra + offset] <- rs. */
    void st(Reg rs, Reg ra, std::int64_t offset);

    /// @name Control flow
    /// @{
    void beq(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Beq, ra, rb, t); }
    void bne(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Bne, ra, rb, t); }
    void blt(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Blt, ra, rb, t); }
    void bge(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Bge, ra, rb, t); }
    void ble(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Ble, ra, rb, t); }
    void bgt(Reg ra, Reg rb, Label t) { emitBranch(Opcode::Bgt, ra, rb, t); }

    /** beq ra, r0, target (pseudo). */
    void beqz(Reg ra, Label target) { beq(ra, 0, target); }

    /** bne ra, r0, target (pseudo). */
    void bnez(Reg ra, Label target) { bne(ra, 0, target); }

    void br(Label target) { emitBranch(Opcode::Br, 0, 0, target); }
    void call(Label target) { emitBranch(Opcode::Call, 0, 0, target); }
    void ret();
    void jr(Reg ra);
    /// @}

    void trap();
    void nop();
    void halt();

    /** Initialize data memory word @p addr to @p value. */
    void data(std::uint64_t addr, std::int64_t value);

    /**
     * Initialize data memory word @p addr with the code address of
     * @p label once resolved (for jump tables used with jr).
     */
    void dataLabel(std::uint64_t addr, Label label);

    /** Current instruction count (address of the next instruction). */
    std::size_t position() const { return code.size(); }

    /**
     * Resolve all label references and produce the Program.
     *
     * Calls fatal() if any referenced label was never bound.
     */
    Program build();

  private:
    struct LabelInfo
    {
        std::string name;
        bool bound = false;
        std::size_t index = 0;
    };

    struct Fixup
    {
        std::size_t instIndex;
        std::size_t labelId;
    };

    struct DataFixup
    {
        std::uint64_t addr;
        std::size_t labelId;
    };

    void emit3(Opcode op, Reg rd, Reg ra, Reg rb);
    void emitImm(Opcode op, Reg rd, Reg ra, std::int64_t imm);
    void emitBranch(Opcode op, Reg ra, Reg rb, Label target);
    void checkReg(Reg reg) const;
    std::size_t labelIndexOrDie(std::size_t id) const;

    std::vector<Instruction> code;
    std::vector<LabelInfo> labels;
    std::vector<Fixup> fixups;
    std::vector<DataFixup> dataFixups;
    std::vector<std::pair<std::uint64_t, std::int64_t>> dataInit;
};

} // namespace tl::isa

#endif // TL_ISA_PROGRAM_HH
