#include "isa/isa.hh"

#include "util/status.hh"

namespace tl::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Slt: return "slt";
      case Opcode::Addi: return "addi";
      case Opcode::Muli: return "muli";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Li: return "li";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Br: return "br";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Jr: return "jr";
      case Opcode::Trap: return "trap";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    panic("unknown opcode %d", static_cast<int>(op));
}

bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
        return true;
      default:
        return false;
    }
}

bool
isControlFlow(Opcode op)
{
    if (isConditionalBranch(op))
        return true;
    switch (op) {
      case Opcode::Br:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Jr:
        return true;
      default:
        return false;
    }
}

std::string
disassemble(const Instruction &inst)
{
    const char *name = opcodeName(inst.op);
    auto r = [](Reg reg) { return strprintf("r%u", unsigned(reg)); };
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Slt:
        return strprintf("%s %s, %s, %s", name, r(inst.rd).c_str(),
                         r(inst.ra).c_str(), r(inst.rb).c_str());
      case Opcode::Addi:
      case Opcode::Muli:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
        return strprintf("%s %s, %s, %lld", name, r(inst.rd).c_str(),
                         r(inst.ra).c_str(),
                         static_cast<long long>(inst.imm));
      case Opcode::Li:
        return strprintf("%s %s, %lld", name, r(inst.rd).c_str(),
                         static_cast<long long>(inst.imm));
      case Opcode::Ld:
        return strprintf("%s %s, %s, %lld", name, r(inst.rd).c_str(),
                         r(inst.ra).c_str(),
                         static_cast<long long>(inst.imm));
      case Opcode::St:
        return strprintf("%s %s, %s, %lld", name, r(inst.rd).c_str(),
                         r(inst.ra).c_str(),
                         static_cast<long long>(inst.imm));
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
        return strprintf("%s %s, %s, %#llx", name, r(inst.ra).c_str(),
                         r(inst.rb).c_str(),
                         static_cast<unsigned long long>(inst.imm));
      case Opcode::Br:
      case Opcode::Call:
        return strprintf("%s %#llx", name,
                         static_cast<unsigned long long>(inst.imm));
      case Opcode::Jr:
        return strprintf("%s %s", name, r(inst.ra).c_str());
      case Opcode::Ret:
      case Opcode::Trap:
      case Opcode::Nop:
      case Opcode::Halt:
        return name;
    }
    panic("unknown opcode %d", static_cast<int>(inst.op));
}

} // namespace tl::isa
