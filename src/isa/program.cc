#include "isa/program.hh"

#include "util/status.hh"

namespace tl::isa
{

std::string
Program::listing() const
{
    // Invert the symbol table to annotate label positions.
    std::map<std::uint64_t, std::string> by_addr;
    for (const auto &[name, addr] : symbols)
        by_addr[addr] = name;

    std::string out;
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::uint64_t addr = instAddress(i);
        auto it = by_addr.find(addr);
        if (it != by_addr.end())
            out += it->second + ":\n";
        out += strprintf("  %#6llx  %s\n",
                         static_cast<unsigned long long>(addr),
                         disassemble(code[i]).c_str());
    }
    return out;
}

std::size_t
Program::staticConditionalBranches() const
{
    std::size_t count = 0;
    for (const Instruction &inst : code) {
        if (isConditionalBranch(inst.op))
            ++count;
    }
    return count;
}

Label
ProgramBuilder::newLabel(std::string name)
{
    std::size_t id = labels.size();
    if (name.empty())
        name = strprintf("L%zu", id);
    labels.push_back(LabelInfo{std::move(name), false, 0});
    return Label(id);
}

void
ProgramBuilder::bind(Label label)
{
    if (!label.valid)
        fatal("bind: label was not created by this builder");
    LabelInfo &info = labels.at(label.id);
    if (info.bound)
        fatal("label '%s' bound twice", info.name.c_str());
    info.bound = true;
    info.index = code.size();
}

Label
ProgramBuilder::here(std::string name)
{
    Label label = newLabel(std::move(name));
    bind(label);
    return label;
}

void
ProgramBuilder::checkReg(Reg reg) const
{
    if (reg >= numRegs)
        fatal("register r%u out of range", unsigned(reg));
}

void
ProgramBuilder::emit3(Opcode op, Reg rd, Reg ra, Reg rb)
{
    checkReg(rd);
    checkReg(ra);
    checkReg(rb);
    code.push_back(Instruction{op, rd, ra, rb, 0});
}

void
ProgramBuilder::emitImm(Opcode op, Reg rd, Reg ra, std::int64_t imm)
{
    checkReg(rd);
    checkReg(ra);
    code.push_back(Instruction{op, rd, ra, 0, imm});
}

void
ProgramBuilder::emitBranch(Opcode op, Reg ra, Reg rb, Label target)
{
    checkReg(ra);
    checkReg(rb);
    if (!target.valid)
        fatal("branch to a label not created by this builder");
    fixups.push_back(Fixup{code.size(), target.id});
    code.push_back(Instruction{op, 0, ra, rb, 0});
}

void
ProgramBuilder::li(Reg rd, std::int64_t imm)
{
    checkReg(rd);
    code.push_back(Instruction{Opcode::Li, rd, 0, 0, imm});
}

void
ProgramBuilder::ld(Reg rd, Reg ra, std::int64_t offset)
{
    checkReg(rd);
    checkReg(ra);
    code.push_back(Instruction{Opcode::Ld, rd, ra, 0, offset});
}

void
ProgramBuilder::st(Reg rs, Reg ra, std::int64_t offset)
{
    checkReg(rs);
    checkReg(ra);
    code.push_back(Instruction{Opcode::St, rs, ra, 0, offset});
}

void
ProgramBuilder::ret()
{
    code.push_back(Instruction{Opcode::Ret, 0, 0, 0, 0});
}

void
ProgramBuilder::jr(Reg ra)
{
    checkReg(ra);
    code.push_back(Instruction{Opcode::Jr, 0, ra, 0, 0});
}

void
ProgramBuilder::trap()
{
    code.push_back(Instruction{Opcode::Trap, 0, 0, 0, 0});
}

void
ProgramBuilder::nop()
{
    code.push_back(Instruction{Opcode::Nop, 0, 0, 0, 0});
}

void
ProgramBuilder::halt()
{
    code.push_back(Instruction{Opcode::Halt, 0, 0, 0, 0});
}

void
ProgramBuilder::data(std::uint64_t addr, std::int64_t value)
{
    dataInit.emplace_back(addr, value);
}

void
ProgramBuilder::dataLabel(std::uint64_t addr, Label label)
{
    if (!label.valid)
        fatal("dataLabel: label was not created by this builder");
    dataFixups.push_back(DataFixup{addr, label.id});
}

std::size_t
ProgramBuilder::labelIndexOrDie(std::size_t id) const
{
    const LabelInfo &info = labels.at(id);
    if (!info.bound)
        fatal("label '%s' referenced but never bound", info.name.c_str());
    return info.index;
}

Program
ProgramBuilder::build()
{
    Program program;
    program.code = code;
    program.dataInit = dataInit;

    for (const Fixup &fixup : fixups) {
        std::size_t index = labelIndexOrDie(fixup.labelId);
        program.code[fixup.instIndex].imm =
            static_cast<std::int64_t>(instAddress(index));
    }
    for (const DataFixup &fixup : dataFixups) {
        std::size_t index = labelIndexOrDie(fixup.labelId);
        program.dataInit.emplace_back(
            fixup.addr, static_cast<std::int64_t>(instAddress(index)));
    }
    for (const LabelInfo &info : labels) {
        if (info.bound)
            program.symbols[info.name] = instAddress(info.index);
    }
    return program;
}

} // namespace tl::isa
