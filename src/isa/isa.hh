/**
 * @file
 * The "M88-lite" mini ISA.
 *
 * The paper generates its branch traces with a Motorola 88100
 * instruction-level simulator. That tracer is not available, so the
 * repository carries a small RISC-style ISA of its own: 32 integer
 * registers, a flat word-addressed data memory, ALU/memory
 * instructions, and the full set of control-flow classes the paper's
 * Figure 4 distinguishes (conditional branches, unconditional
 * branches, calls, returns, indirect jumps) plus TRAP instructions to
 * drive the context-switch experiments of Section 5.1.4.
 *
 * Instructions occupy 4 address units; code starts at codeBase so
 * branch addresses look like real text addresses.
 */

#ifndef TL_ISA_ISA_HH
#define TL_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace tl::isa
{

/** Number of architectural integer registers; r0 is hardwired to 0. */
constexpr unsigned numRegs = 32;

/** A register number. */
using Reg = std::uint8_t;

/** Base address of the text segment. */
constexpr std::uint64_t codeBase = 0x1000;

/** Size of one instruction in address units. */
constexpr std::uint64_t instBytes = 4;

/** Opcodes of the M88-lite ISA. */
enum class Opcode : std::uint8_t
{
    // ALU register-register: rd <- ra op rb
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra,
    Slt,  //!< rd <- (ra < rb) ? 1 : 0, signed

    // ALU register-immediate: rd <- ra op imm
    Addi, Muli, Andi, Ori, Xori, Slli, Srli,

    // rd <- imm (64-bit immediate load)
    Li,

    // Memory: rd <- mem[ra + imm] / mem[ra + imm] <- rd
    Ld, St,

    // Conditional direct branches: compare ra, rb; target = imm
    Beq, Bne, Blt, Bge, Ble, Bgt,

    // Unconditional direct branch: target = imm
    Br,

    // Subroutine call (target = imm) and return
    Call, Ret,

    // Indirect jump to the address held in ra
    Jr,

    // Trap (syscall marker); execution continues
    Trap,

    // Miscellaneous
    Nop, Halt,
};

/** Number of opcodes. */
constexpr unsigned numOpcodes = static_cast<unsigned>(Opcode::Halt) + 1;

/** Mnemonic for an opcode ("add", "beq", ...). */
const char *opcodeName(Opcode op);

/** True for Beq..Bgt. */
bool isConditionalBranch(Opcode op);

/** True for any control-flow opcode (branches, call, ret, jr). */
bool isControlFlow(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;           //!< destination (or source for St)
    Reg ra = 0;           //!< first source
    Reg rb = 0;           //!< second source
    std::int64_t imm = 0; //!< immediate / branch target address

    bool operator==(const Instruction &other) const = default;
};

/** Render an instruction as assembly text. */
std::string disassemble(const Instruction &inst);

/** Address of instruction @p index in the text segment. */
constexpr std::uint64_t
instAddress(std::size_t index)
{
    return codeBase + index * instBytes;
}

/** Inverse of instAddress(). */
constexpr std::size_t
instIndex(std::uint64_t address)
{
    return static_cast<std::size_t>((address - codeBase) / instBytes);
}

} // namespace tl::isa

#endif // TL_ISA_ISA_HH
