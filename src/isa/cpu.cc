#include "isa/cpu.hh"

#include <utility>

#include "util/status.hh"

namespace tl::isa
{

Cpu::Cpu(Program prog, CpuOptions options)
    : program(std::move(prog)), options(options)
{
    if (program.code.empty())
        fatal("cannot execute an empty program");
    memory.assign(options.memWords, 0);
    for (const auto &[addr, value] : program.dataInit) {
        checkMem(addr, "data initializer");
        memory[addr] = value;
    }
}

std::int64_t
Cpu::reg(unsigned index) const
{
    if (index >= numRegs)
        fatal("register r%u out of range", index);
    return index == 0 ? 0 : regs[index];
}

void
Cpu::setReg(unsigned index, std::int64_t value)
{
    if (index >= numRegs)
        fatal("register r%u out of range", index);
    if (index != 0)
        regs[index] = value;
}

void
Cpu::checkMem(std::uint64_t addr, const char *what) const
{
    if (addr >= memory.size()) {
        fatal("%s: memory address %#llx out of range (pc=%#llx)", what,
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(instAddress(pc)));
    }
}

std::int64_t
Cpu::mem(std::uint64_t addr) const
{
    checkMem(addr, "mem read");
    return memory[addr];
}

void
Cpu::setMem(std::uint64_t addr, std::int64_t value)
{
    checkMem(addr, "mem write");
    memory[addr] = value;
}

std::size_t
Cpu::targetIndex(std::uint64_t addr, const char *what) const
{
    if (addr < codeBase || (addr - codeBase) % instBytes != 0) {
        fatal("%s: bad target address %#llx (pc=%#llx)", what,
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(instAddress(pc)));
    }
    std::size_t index = instIndex(addr);
    if (index >= program.code.size()) {
        fatal("%s: target address %#llx beyond program end", what,
              static_cast<unsigned long long>(addr));
    }
    return index;
}

bool
Cpu::step(BranchRecord &record)
{
    const Instruction &inst = program.code[pc];
    ++instCount;
    ++instsSinceBranch;

    std::int64_t a = reg(inst.ra);
    std::int64_t b = reg(inst.rb);
    std::size_t next_pc = pc + 1;

    auto shiftAmount = [](std::int64_t amount) {
        return static_cast<unsigned>(amount) & 63u;
    };

    auto emitBranch = [&](BranchClass cls, std::uint64_t target,
                          bool taken) {
        record.pc = instAddress(pc);
        record.target = target;
        record.cls = cls;
        record.taken = taken;
        record.instsSince = instsSinceBranch;
        record.trap = pendingTrap;
        instsSinceBranch = 0;
        pendingTrap = false;
    };

    switch (inst.op) {
      case Opcode::Add:
        setReg(inst.rd, a + b);
        break;
      case Opcode::Sub:
        setReg(inst.rd, a - b);
        break;
      case Opcode::Mul:
        setReg(inst.rd, a * b);
        break;
      case Opcode::Div:
        setReg(inst.rd, b == 0 ? 0 : a / b);
        break;
      case Opcode::Rem:
        setReg(inst.rd, b == 0 ? 0 : a % b);
        break;
      case Opcode::And:
        setReg(inst.rd, a & b);
        break;
      case Opcode::Or:
        setReg(inst.rd, a | b);
        break;
      case Opcode::Xor:
        setReg(inst.rd, a ^ b);
        break;
      case Opcode::Sll:
        setReg(inst.rd, a << shiftAmount(b));
        break;
      case Opcode::Srl:
        setReg(inst.rd,
               static_cast<std::int64_t>(
                   static_cast<std::uint64_t>(a) >> shiftAmount(b)));
        break;
      case Opcode::Sra:
        setReg(inst.rd, a >> shiftAmount(b));
        break;
      case Opcode::Slt:
        setReg(inst.rd, a < b ? 1 : 0);
        break;

      case Opcode::Addi:
        setReg(inst.rd, a + inst.imm);
        break;
      case Opcode::Muli:
        setReg(inst.rd, a * inst.imm);
        break;
      case Opcode::Andi:
        setReg(inst.rd, a & inst.imm);
        break;
      case Opcode::Ori:
        setReg(inst.rd, a | inst.imm);
        break;
      case Opcode::Xori:
        setReg(inst.rd, a ^ inst.imm);
        break;
      case Opcode::Slli:
        setReg(inst.rd, a << shiftAmount(inst.imm));
        break;
      case Opcode::Srli:
        setReg(inst.rd,
               static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                         shiftAmount(inst.imm)));
        break;

      case Opcode::Li:
        setReg(inst.rd, inst.imm);
        break;

      case Opcode::Ld: {
        std::uint64_t addr = static_cast<std::uint64_t>(a + inst.imm);
        checkMem(addr, "ld");
        setReg(inst.rd, memory[addr]);
        break;
      }
      case Opcode::St: {
        std::uint64_t addr = static_cast<std::uint64_t>(a + inst.imm);
        checkMem(addr, "st");
        memory[addr] = reg(inst.rd);
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt: {
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = a < b; break;
          case Opcode::Bge: taken = a >= b; break;
          case Opcode::Ble: taken = a <= b; break;
          case Opcode::Bgt: taken = a > b; break;
          default: panic("unreachable");
        }
        std::uint64_t target = static_cast<std::uint64_t>(inst.imm);
        std::size_t target_index = targetIndex(target, "branch");
        emitBranch(BranchClass::Conditional, target, taken);
        pc = taken ? target_index : next_pc;
        return true;
      }

      case Opcode::Br: {
        std::uint64_t target = static_cast<std::uint64_t>(inst.imm);
        std::size_t target_index = targetIndex(target, "br");
        emitBranch(BranchClass::Unconditional, target, true);
        pc = target_index;
        return true;
      }

      case Opcode::Call: {
        std::uint64_t target = static_cast<std::uint64_t>(inst.imm);
        std::size_t target_index = targetIndex(target, "call");
        if (callStack.size() >= options.maxCallDepth)
            fatal("call stack overflow at pc=%#llx",
                  static_cast<unsigned long long>(instAddress(pc)));
        callStack.push_back(next_pc);
        emitBranch(BranchClass::Call, target, true);
        pc = target_index;
        return true;
      }

      case Opcode::Ret: {
        if (callStack.empty())
            fatal("ret with empty call stack at pc=%#llx",
                  static_cast<unsigned long long>(instAddress(pc)));
        std::size_t return_index = callStack.back();
        callStack.pop_back();
        if (return_index >= program.code.size())
            fatal("ret to address beyond program end");
        emitBranch(BranchClass::Return, instAddress(return_index), true);
        pc = return_index;
        return true;
      }

      case Opcode::Jr: {
        std::uint64_t target = static_cast<std::uint64_t>(a);
        std::size_t target_index = targetIndex(target, "jr");
        emitBranch(BranchClass::Indirect, target, true);
        pc = target_index;
        return true;
      }

      case Opcode::Trap:
        ++trapCount;
        pendingTrap = true;
        break;

      case Opcode::Nop:
        break;

      case Opcode::Halt:
        sawHalt = true;
        done = true;
        return false;
    }

    pc = next_pc;
    if (pc >= program.code.size())
        fatal("fell off the end of the program");
    return false;
}

bool
Cpu::next(BranchRecord &record)
{
    while (!done) {
        if (instCount >= options.maxInstructions) {
            done = true;
            break;
        }
        if (step(record))
            return true;
    }
    return false;
}

void
Cpu::run()
{
    BranchRecord record;
    while (next(record)) {
    }
}

Trace
captureTrace(const Program &program, CpuOptions options)
{
    Cpu cpu(program, options);
    Trace trace;
    trace.appendAll(cpu);
    return trace;
}

Trace
captureTraceLimited(const Program &program, std::uint64_t maxConditional,
                    CpuOptions options)
{
    Cpu cpu(program, options);
    Trace trace;
    trace.appendConditionalLimited(cpu, maxConditional);
    return trace;
}

} // namespace tl::isa
