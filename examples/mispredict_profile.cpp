/**
 * @file
 * mispredict_profile: per-branch-site misprediction breakdown for a
 * workload under a given predictor — the tool you reach for when
 * asking *which* branches a scheme fails on (the paper's Section 6
 * closes by wanting to characterize the residual 3%).
 *
 * Usage:
 *   mispredict_profile <workload> [spec]
 *       default spec: PAg(BHT(512,4,12-sr),1xPHT(4096,A2))
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "predictor/factory.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace tl;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mispredict_profile <workload> [spec]\n");
        return 1;
    }
    const Workload &workload = workloadByName(argv[1]);
    std::string spec_text =
        argc > 2 ? argv[2] : "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))";

    SchemeSpec spec = SchemeSpec::parse(spec_text);
    auto predictor = makePredictor(spec);
    if (predictor->needsTraining()) {
        Trace training =
            workload.captureTraining(defaultBranchBudget());
        TraceReplaySource source(training);
        predictor->train(source);
    }

    Trace trace = workload.captureTesting(defaultBranchBudget());

    struct SiteStats
    {
        std::uint64_t count = 0;
        std::uint64_t misses = 0;
        std::uint64_t taken = 0;
    };
    std::map<std::uint64_t, SiteStats> sites;
    std::uint64_t total = 0, misses = 0;

    for (const BranchRecord &record : trace.records()) {
        if (!record.isConditional())
            continue;
        BranchQuery query = BranchQuery::fromRecord(record);
        bool correct =
            predictor->predictAndUpdate(query, record.taken);
        SiteStats &site = sites[record.pc];
        ++site.count;
        ++total;
        if (record.taken)
            ++site.taken;
        if (!correct) {
            ++site.misses;
            ++misses;
        }
    }

    std::printf("%s on %s: %llu cond branches, %llu mispredicts "
                "(%.2f%% accuracy), %zu sites\n\n",
                spec_text.c_str(), workload.name().c_str(),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(misses),
                total ? 100.0 * (1.0 - double(misses) / double(total))
                      : 0.0,
                sites.size());

    std::vector<std::pair<std::uint64_t, SiteStats>> sorted(
        sites.begin(), sites.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second.misses > b.second.misses;
              });

    std::printf("%-10s %10s %10s %8s %8s %9s\n", "pc", "execs",
                "misses", "miss%", "taken%", "shareOfMiss");
    std::size_t shown = 0;
    for (const auto &[pc, site] : sorted) {
        if (shown++ >= 20)
            break;
        std::printf("%#-10llx %10llu %10llu %7.2f%% %7.1f%% %8.2f%%\n",
                    static_cast<unsigned long long>(pc),
                    static_cast<unsigned long long>(site.count),
                    static_cast<unsigned long long>(site.misses),
                    100.0 * double(site.misses) / double(site.count),
                    100.0 * double(site.taken) / double(site.count),
                    misses ? 100.0 * double(site.misses) /
                                 double(misses)
                           : 0.0);
    }
    return 0;
}
