/**
 * @file
 * tlsim: the command-line front end to the library — run any
 * predictor specification against any built-in workload or trace
 * file, with the paper's simulation options.
 *
 * Usage:
 *   tlsim --spec <spec> [--spec <spec> ...]
 *         (--workload <name> [--dataset <name>] | --trace <file>)
 *         [--branches N] [--context-switches] [--interval N]
 *         [--fetch] [--csv]
 *
 * Examples:
 *   tlsim --spec 'PAg(BHT(512,4,12-sr),1xPHT(4096,A2))' \
 *         --workload gcc
 *   tlsim --spec 'BTB(BHT(512,4,A2))' --spec BTFN \
 *         --workload eqntott --branches 500000
 *   tlsim --spec 'GAg(HR(1,,12-sr),1xPHT(4096,A2))' \
 *         --trace mytrace.txt --fetch
 *
 * Schemes that need training (PSg, GSg, Profiling) are trained on the
 * workload's training dataset; combining them with --trace or a
 * workload without training data is an error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "predictor/factory.hh"
#include "predictor/return_stack.hh"
#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/fetch.hh"
#include "trace/io.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

namespace
{

using namespace tl;

struct Options
{
    std::vector<std::string> specs;
    std::string workload;
    std::string dataset;
    std::string traceFile;
    std::uint64_t branches = 0;
    bool contextSwitches = false;
    std::uint64_t interval = 500000;
    bool fetch = false;
    bool csv = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --spec <spec> [--spec <spec> ...]\n"
        "       (--workload <name> [--dataset <name>] | --trace "
        "<file>)\n"
        "       [--branches N] [--context-switches] [--interval N]\n"
        "       [--fetch] [--csv]\n",
        argv0);
    std::exit(1);
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto need_value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec") {
            options.specs.push_back(need_value(i));
        } else if (arg == "--workload") {
            options.workload = need_value(i);
        } else if (arg == "--dataset") {
            options.dataset = need_value(i);
        } else if (arg == "--trace") {
            options.traceFile = need_value(i);
        } else if (arg == "--branches") {
            options.branches = std::strtoull(
                need_value(i).c_str(), nullptr, 10);
        } else if (arg == "--context-switches") {
            options.contextSwitches = true;
        } else if (arg == "--interval") {
            options.interval = std::strtoull(
                need_value(i).c_str(), nullptr, 10);
        } else if (arg == "--fetch") {
            options.fetch = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    if (options.specs.empty())
        usage(argv[0]);
    bool have_workload = !options.workload.empty();
    bool have_trace = !options.traceFile.empty();
    if (have_workload == have_trace)
        usage(argv[0]); // exactly one source
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseArgs(argc, argv);
    std::uint64_t budget =
        options.branches ? options.branches : defaultBranchBudget();

    // --- acquire the trace ------------------------------------------
    Trace trace;
    const Workload *workload = nullptr;
    if (!options.traceFile.empty()) {
        trace = loadTrace(options.traceFile);
    } else {
        workload = &workloadByName(options.workload);
        std::string dataset = options.dataset.empty()
                                  ? workload->testingDataset()
                                  : options.dataset;
        trace = workload->capture(dataset, budget);
    }

    SimOptions sim_options;
    sim_options.maxConditionalBranches = budget;
    sim_options.contextSwitches = options.contextSwitches;
    sim_options.contextSwitchInterval = options.interval;

    TextTable table(
        options.fetch
            ? std::vector<std::string>{"Scheme", "CorrectFetch%",
                                       "Misfetch%", "Mispredict%"}
            : std::vector<std::string>{"Scheme", "Branches",
                                       "Accuracy%", "Switches"});
    table.setTitle(strprintf(
        "tlsim: %s (%zu records)",
        options.traceFile.empty() ? options.workload.c_str()
                                  : options.traceFile.c_str(),
        trace.size()));

    for (const std::string &spec_text : options.specs) {
        SchemeSpec spec = SchemeSpec::parse(spec_text);
        auto predictor = makePredictor(spec);
        if (predictor->needsTraining()) {
            if (!workload || !workload->hasTraining()) {
                fatal("scheme '%s' needs a training dataset; use a "
                      "workload with one (Table 2)",
                      spec_text.c_str());
            }
            Trace training = workload->captureTraining(budget);
            TraceReplaySource source(training);
            predictor->train(source);
        }
        if (spec.contextSwitch)
            sim_options.contextSwitches = true;

        if (options.fetch) {
            TargetCache targets;
            ReturnStack ras(16);
            FetchResult result =
                simulateFetch(trace, *predictor, targets, &ras);
            table.addRow({
                predictor->name(),
                TextTable::num(result.correctPercent()),
                TextTable::num(result.misfetchPercent()),
                TextTable::num(result.mispredictPercent()),
            });
        } else {
            SimResult result =
                simulate(trace, *predictor, sim_options);
            table.addRow({
                predictor->name(),
                TextTable::num(result.conditionalBranches),
                TextTable::num(result.accuracyPercent()),
                TextTable::num(result.contextSwitchCount),
            });
        }
    }

    std::fputs(options.csv ? table.toCsv().c_str()
                           : table.toText().c_str(),
               stdout);
    return 0;
}
