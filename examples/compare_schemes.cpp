/**
 * @file
 * compare_schemes: run a set of predictors over the nine-benchmark
 * suite and print the paper-style accuracy table (a smaller
 * Figure 11).
 *
 * Usage:
 *   compare_schemes                     # the default scheme zoo
 *   compare_schemes "<spec>" ...        # explicit Table-3 specs, e.g.
 *       compare_schemes "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))" BTFN
 *
 * Set TL_BENCH_BRANCHES to change the per-benchmark trace length.
 */

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace tl;

    std::vector<std::string> specs;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            specs.emplace_back(argv[i]);
    } else {
        specs = {
            "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))",
            "PSg(BHT(512,4,12-sr),1xPHT(4096,PB))",
            "BTB(BHT(512,4,A2))",
            "Profiling",
            "BTB(BHT(512,4,LT))",
            "BTFN",
            "AlwaysTaken",
        };
    }

    WorkloadSuite suite;
    std::vector<ResultSet> columns;
    columns.reserve(specs.size());
    for (const std::string &spec : specs)
        columns.push_back(runOnSuite(spec, suite));

    printReport("Prediction accuracy (percent) per scheme", columns,
                "compare_schemes");
    return 0;
}
