/**
 * @file
 * compare_schemes: run a set of predictors over the nine-benchmark
 * suite — in parallel — and print the paper-style accuracy table (a
 * smaller Figure 11).
 *
 * Usage:
 *   compare_schemes                     # the default scheme zoo
 *   compare_schemes "<spec>" ...        # explicit Table-3 specs, e.g.
 *       compare_schemes "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))" BTFN
 *   compare_schemes --threads=4 ...     # worker threads (default:
 *                                       # all hardware threads;
 *                                       # 0 runs serially)
 *
 * Set TL_BENCH_BRANCHES to change the per-benchmark trace length
 * (read once at startup).
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/report.hh"
#include "sim/sweep.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace tl;

    RunOptions options;
    options.threads = ThreadPool::hardwareThreads();

    std::vector<std::string> specs;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            options.threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        else
            specs.emplace_back(argv[i]);
    }
    if (specs.empty()) {
        specs = {
            "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))",
            "PSg(BHT(512,4,12-sr),1xPHT(4096,PB))",
            "BTB(BHT(512,4,A2))",
            "Profiling",
            "BTB(BHT(512,4,LT))",
            "BTFN",
            "AlwaysTaken",
        };
    }

    std::vector<SweepSpec> columns;
    columns.reserve(specs.size());
    for (const std::string &spec : specs)
        columns.push_back(sweepSpec(spec));

    SweepRunner runner(options);
    std::vector<ResultSet> results = runner.run(columns);

    printReport("Prediction accuracy (percent) per scheme", results,
                "compare_schemes");
    return 0;
}
