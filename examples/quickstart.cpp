/**
 * @file
 * quickstart: the five-minute tour of the library.
 *
 *  1. Build a Two-Level Adaptive predictor (PAg, the paper's
 *     recommended variation).
 *  2. Feed it a branch stream — first a synthetic loop, then a real
 *     workload trace from the built-in suite.
 *  3. Read accuracy and hardware cost.
 */

#include <cstdio>

#include "predictor/factory.hh"
#include "predictor/two_level.hh"
#include "sim/engine.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace tl;

    // --- 1. a predictor, two ways -----------------------------------
    // Typed configuration...
    TwoLevelPredictor pag(TwoLevelConfig::pag(12));
    // ...or the paper's Table-3 naming convention.
    auto btb = makePredictor("BTB(BHT(512,4,A2))");

    std::printf("predictor A: %s\n", pag.name().c_str());
    std::printf("predictor B: %s\n\n", btb->name().c_str());

    // --- 2a. a loop branch: taken 7 times, then not taken ----------
    {
        LoopSource loop(0x1000, 8, 20000);
        SimResult result = simulate(loop, pag);
        std::printf("loop (period 8):  PAg accuracy %.2f%% "
                    "(learns the exit)\n",
                    result.accuracyPercent());
    }
    {
        LoopSource loop(0x1000, 8, 20000);
        SimResult result = simulate(loop, *btb);
        std::printf("loop (period 8):  BTB accuracy %.2f%% "
                    "(misses every exit)\n\n",
                    result.accuracyPercent());
    }

    // --- 2b. a real workload from the nine-benchmark suite ---------
    pag.reset();
    Trace trace = workloadByName("eqntott").captureTesting(100000);
    SimResult result = simulate(trace, pag);
    std::printf("eqntott: %llu conditional branches, "
                "accuracy %.2f%%\n",
                static_cast<unsigned long long>(
                    result.conditionalBranches),
                result.accuracyPercent());

    // --- 3. hardware cost (Section 3.4 of the paper) ----------------
    auto cost = pag.hardwareCost();
    std::printf("\nhardware cost of %s:\n%s\n", pag.name().c_str(),
                cost->toString().c_str());
    return 0;
}
