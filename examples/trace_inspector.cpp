/**
 * @file
 * trace_inspector: inspect the branch statistics of the built-in
 * workloads, or of a trace file.
 *
 * Usage:
 *   trace_inspector                 # summarize all nine workloads
 *   trace_inspector <workload>      # one workload, more detail
 *   trace_inspector --file <path>   # a stored trace (binary or .txt)
 *   trace_inspector --file <path> --salvage   # keep the valid prefix
 *                                             # of a truncated trace
 *   trace_inspector --save <workload> <path>  # export a trace file
 *
 * The per-workload summary corresponds to the paper's Table 1
 * (static conditional branches) and Figure 4 (dynamic branch class
 * distribution).
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "trace/io.hh"
#include "trace/stats.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

namespace
{

using namespace tl;

void
printDetail(const std::string &name, const Trace &trace)
{
    TraceStats stats;
    TraceReplaySource source(trace);
    stats.addAll(source);

    std::printf("%s\n", name.c_str());
    std::printf("  records                 %llu\n",
                static_cast<unsigned long long>(trace.size()));
    std::printf("  dynamic instructions    %llu\n",
                static_cast<unsigned long long>(stats.instructions()));
    std::printf("  branch %% of instructions %.1f%%\n",
                stats.branchPercentOfInstructions());
    std::printf("  static cond branches    %llu\n",
                static_cast<unsigned long long>(
                    stats.staticConditionalBranches()));
    std::printf("  taken rate              %.1f%%\n",
                stats.takenPercent());
    std::printf("  traps                   %llu\n",
                static_cast<unsigned long long>(stats.traps()));
    for (unsigned c = 0; c < numBranchClasses; ++c) {
        BranchClass cls = static_cast<BranchClass>(c);
        std::printf("  %-8s %6.2f%%  (%llu)\n", branchClassName(cls),
                    stats.classPercent(cls),
                    static_cast<unsigned long long>(
                        stats.dynamicBranches(cls)));
    }
}

int
summarizeAll()
{
    std::uint64_t budget = defaultBranchBudget();
    TextTable table({"Benchmark", "StaticCnd", "Cond%", "Uncond%",
                     "Call%", "Ret%", "Ind%", "Taken%", "Br/Inst%",
                     "Traps"});
    table.setTitle(
        "Workload suite summary (Table 1 / Figure 4 analogues)");
    for (const Workload *workload : allWorkloads()) {
        Trace trace = workload->captureTesting(budget);
        TraceStats stats;
        TraceReplaySource source(trace);
        stats.addAll(source);
        table.addRow({
            workload->name(),
            TextTable::num(stats.staticConditionalBranches()),
            TextTable::num(stats.classPercent(BranchClass::Conditional),
                           1),
            TextTable::num(
                stats.classPercent(BranchClass::Unconditional), 1),
            TextTable::num(stats.classPercent(BranchClass::Call), 1),
            TextTable::num(stats.classPercent(BranchClass::Return), 1),
            TextTable::num(stats.classPercent(BranchClass::Indirect),
                           1),
            TextTable::num(stats.takenPercent(), 1),
            TextTable::num(stats.branchPercentOfInstructions(), 1),
            TextTable::num(stats.traps()),
        });
    }
    std::fputs(table.toText().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tl;

    if (argc == 1)
        return summarizeAll();

    std::string arg = argv[1];
    if (arg == "--file" && (argc == 3 || argc == 4)) {
        // Trace files come from outside the process, so a damaged or
        // truncated file must not kill the inspector: use the
        // recoverable loader and report the Status ourselves.
        TraceReadOptions options;
        if (argc == 4) {
            if (std::string(argv[3]) != "--salvage") {
                std::fprintf(stderr,
                             "trace_inspector: unknown option '%s' "
                             "(did you mean --salvage?)\n",
                             argv[3]);
                return 2;
            }
            options.salvageTruncated = true;
        }
        TraceReadStats stats;
        StatusOr<Trace> trace = tryLoadTrace(argv[2], options, &stats);
        if (!trace.ok()) {
            std::fprintf(stderr, "trace_inspector: cannot read %s: %s\n",
                         argv[2], trace.status().toString().c_str());
            return 1;
        }
        if (stats.salvaged) {
            std::fprintf(stderr,
                         "trace_inspector: %s was damaged; analyzing "
                         "the %llu salvageable records (%llu dropped)\n",
                         argv[2],
                         static_cast<unsigned long long>(trace->size()),
                         static_cast<unsigned long long>(
                             stats.droppedRecords));
        }
        printDetail(argv[2], *trace);
        return 0;
    }
    if (arg == "--save" && argc == 4) {
        const Workload &workload = workloadByName(argv[2]);
        Trace trace = workload.captureTesting(defaultBranchBudget());
        saveTrace(trace, argv[3]);
        std::printf("wrote %zu records to %s\n", trace.size(), argv[3]);
        return 0;
    }
    const Workload &workload = workloadByName(arg);
    printDetail(workload.name(),
                workload.captureTesting(defaultBranchBudget()));
    return 0;
}
