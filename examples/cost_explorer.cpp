/**
 * @file
 * cost_explorer: sweep Two-Level configurations, measure accuracy on
 * the built-in suite and hardware cost from the Section 3.4 model,
 * then report the cheapest configuration reaching a target accuracy —
 * the design exploration behind the paper's Figure 8.
 *
 * Usage:
 *   cost_explorer [target_accuracy_percent]   (default 94)
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "predictor/two_level.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace tl;

    double target = argc > 1 ? std::atof(argv[1]) : 94.0;
    if (target <= 0.0 || target >= 100.0) {
        std::fprintf(stderr, "target accuracy must be in (0, 100)\n");
        return 1;
    }

    WorkloadSuite suite;

    struct Candidate
    {
        TwoLevelConfig config;
        double accuracy = 0.0;
        double cost = 0.0;
    };
    std::vector<Candidate> candidates;

    // The design space: the three variations over history lengths.
    for (unsigned k : {4u, 6u, 8u, 10u, 12u, 14u, 16u, 18u})
        candidates.push_back({TwoLevelConfig::gag(k)});
    for (unsigned k : {4u, 6u, 8u, 10u, 12u, 14u})
        candidates.push_back({TwoLevelConfig::pag(k)});
    for (unsigned k : {2u, 4u, 6u, 8u})
        candidates.push_back({TwoLevelConfig::pap(k)});

    TextTable table(
        {"Scheme", "k", "Tot GMean", "Cost", "Meets target"});
    table.setTitle(strprintf(
        "Accuracy vs hardware cost (target %.1f%%)", target));

    const Candidate *best = nullptr;
    for (Candidate &candidate : candidates) {
        ResultSet results = runSuite(
            candidate.config.schemeName(),
            [&candidate] {
                return std::make_unique<TwoLevelPredictor>(
                    candidate.config);
            },
            suite);
        candidate.accuracy = results.totalGMean();
        TwoLevelPredictor predictor(candidate.config);
        candidate.cost = predictor.hardwareCost()->total();

        bool meets = candidate.accuracy >= target;
        table.addRow({
            candidate.config.variationName(),
            TextTable::num(std::uint64_t{candidate.config.historyBits}),
            TextTable::num(candidate.accuracy),
            TextTable::num(candidate.cost, 0),
            meets ? "yes" : "",
        });
        if (meets && (!best || candidate.cost < best->cost))
            best = &candidate;
    }

    std::fputs(table.toText().c_str(), stdout);
    if (best) {
        std::printf("\ncheapest configuration reaching %.1f%%: %s "
                    "(accuracy %.2f%%, cost %.0f)\n",
                    target, best->config.schemeName().c_str(),
                    best->accuracy, best->cost);
    } else {
        std::printf("\nno configuration in the swept space reaches "
                    "%.1f%%\n",
                    target);
    }
    return 0;
}
