/**
 * @file
 * custom_workload: write your own benchmark in M88-lite assembly and
 * race predictors on it.
 *
 * The program below is a small bubble sort over a pseudo-random
 * array — a classic branch-prediction torture test: the inner
 * compare-and-swap branch starts near-random and becomes perfectly
 * predictable as the array sorts.
 *
 * Usage:
 *   custom_workload              # run the built-in bubble sort
 *   custom_workload <file.s>     # assemble and run your own program
 */

#include <cstdio>
#include <string>

#include "isa/assembler.hh"
#include "isa/cpu.hh"
#include "predictor/factory.hh"
#include "sim/engine.hh"
#include "trace/stats.hh"

namespace
{

const char *bubbleSortSource = R"(
; bubble sort of 64 LCG-generated values, repeated forever
; r1 = outer i, r2 = inner j, r3 = LCG state, r4/r5 = elements
; r6 = n, r7 = address scratch, r10 = pass counter
        li   r6, 64
        li   r3, 0x2545f491
outer:
        ; (re)generate the array
        li   r2, 0
gen:
        muli r3, r3, 6364136223846793005
        addi r3, r3, 1442695040888963407
        srli r4, r3, 33
        andi r4, r4, 1023
        st   r4, r2, 256        ; array at mem[256..]
        addi r2, r2, 1
        blt  r2, r6, gen

        ; bubble sort
        li   r1, 0
sort_i:
        li   r2, 0
        sub  r8, r6, r1
        addi r8, r8, -1         ; inner bound = n - i - 1
sort_j:
        ld   r4, r2, 256
        addi r7, r2, 1
        ld   r5, r7, 256
        ble  r4, r5, no_swap    ; the torture branch
        st   r5, r2, 256
        st   r4, r7, 256
no_swap:
        addi r2, r2, 1
        blt  r2, r8, sort_j
        addi r1, r1, 1
        blt  r1, r6, sort_i

        addi r10, r10, 1
        br   outer
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace tl;

    isa::Program program = argc > 1
                               ? isa::assembleFile(argv[1])
                               : isa::assemble(bubbleSortSource);
    std::printf("program: %zu instructions, %zu static conditional "
                "branches\n",
                program.size(), program.staticConditionalBranches());

    Trace trace = isa::captureTraceLimited(program, 200000);
    TraceStats stats;
    TraceReplaySource stat_source(trace);
    stats.addAll(stat_source);
    std::printf("trace: %llu conditional branches, %.1f%% taken\n\n",
                static_cast<unsigned long long>(
                    stats.conditionalBranches()),
                stats.takenPercent());

    const char *specs[] = {
        "PAg(BHT(512,4,12-sr),1xPHT(4096,A2))",
        "GAg(HR(1,,12-sr),1xPHT(4096,A2))",
        "BTB(BHT(512,4,A2))",
        "BTFN",
        "AlwaysTaken",
    };
    for (const char *spec : specs) {
        auto predictor = makePredictor(spec);
        SimResult result = simulate(trace, *predictor);
        std::printf("%-42s %.2f%%\n", predictor->name().c_str(),
                    result.accuracyPercent());
    }
    return 0;
}
