#!/usr/bin/env python3
"""Structurally validate chunked v3 trace files (trace/chunked.hh).

An independent reimplementation of the v3 layout in ~100 lines of
Python: it shares no code with the C++ reader, so a bug that makes the
writer and reader agree on malformed bytes fails CI here instead of
surviving as a dialect only this repo can parse. The file CRCs are the
standard IEEE CRC-32 (zlib.crc32), checked end to end:

  * header: "TLBT" magic, version 3, CRC over the preceding 20 bytes;
  * trailer: footer offset located from EOF, CRC over the offset
    salted with the footer magic;
  * footer: "TLCF" magic, chunk count, entry table spanning exactly
    the bytes between footer offset and trailer, footer CRC;
  * every chunk: offset/record monotonicity, payload record
    granularity (24-byte records), and the per-chunk CRC salted with
    the chunk's record count and index — so duplicated, dropped and
    reordered chunks are all caught;
  * the header's announced record count equals the sum over chunks,
    and every chunk except the last holds exactly chunkRecords.

Usage: validate_trace_v3.py FILE.tl3 [FILE.tl3 ...]
       validate_trace_v3.py --selftest
Exit:  0 when every file validates; 1 otherwise.
"""

import os
import struct
import sys
import tempfile
import zlib

HEADER_SIZE = 24
FOOTER_FIXED = 12
ENTRY_SIZE = 12
TRAILER_SIZE = 12
RECORD_BYTES = 24
VERSION = 3


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def chunk_crc(records, index, payload):
    salt = struct.pack("<QQ", records, index)
    return zlib.crc32(payload, zlib.crc32(salt))


def trailer_crc(footer_offset):
    return zlib.crc32(b"TLCF", zlib.crc32(struct.pack("<Q",
                                                      footer_offset)))


def validate(path):
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        return fail(path, str(error))
    if len(data) < HEADER_SIZE + FOOTER_FIXED + TRAILER_SIZE + 4:
        return fail(path, f"too short for a v3 trace ({len(data)} "
                    f"bytes)")

    magic, version, announced, chunk_records, header_crc = \
        struct.unpack_from("<4sIQII", data, 0)
    if magic != b"TLBT":
        return fail(path, f"bad magic {magic!r}")
    if version != VERSION:
        return fail(path, f"version {version}, expected {VERSION}")
    if header_crc != zlib.crc32(data[:20]):
        return fail(path, "header checksum mismatch")
    if chunk_records == 0:
        return fail(path, "chunkRecords is zero")

    trailer_at = len(data) - TRAILER_SIZE
    footer_offset, stored = struct.unpack_from("<QI", data, trailer_at)
    if stored != trailer_crc(footer_offset):
        return fail(path, "trailer checksum mismatch")
    if not HEADER_SIZE <= footer_offset <= trailer_at - FOOTER_FIXED - 4:
        return fail(path, f"footer offset {footer_offset} out of range")
    if data[footer_offset:footer_offset + 4] != b"TLCF":
        return fail(path, f"bad footer magic at byte {footer_offset}")
    (num_chunks,) = struct.unpack_from("<Q", data, footer_offset + 4)
    footer_end = footer_offset + FOOTER_FIXED + num_chunks * ENTRY_SIZE
    if footer_end + 4 != trailer_at:
        return fail(path, f"footer advertises {num_chunks} chunks but "
                    f"spans the wrong byte range")
    (footer_crc,) = struct.unpack_from("<I", data, footer_end)
    if footer_crc != zlib.crc32(data[footer_offset:footer_end]):
        return fail(path, "footer checksum mismatch")

    total = 0
    expected_offset = HEADER_SIZE
    for index in range(num_chunks):
        offset, records = struct.unpack_from(
            "<QI", data, footer_offset + FOOTER_FIXED +
            index * ENTRY_SIZE)
        if offset != expected_offset:
            return fail(path, f"chunk {index}: offset {offset}, "
                        f"expected {expected_offset}")
        if records == 0:
            return fail(path, f"chunk {index}: empty chunk")
        if records != chunk_records and index != num_chunks - 1:
            return fail(path, f"chunk {index}: {records} records in a "
                        f"non-final chunk of a {chunk_records}-record "
                        f"layout")
        payload_end = offset + records * RECORD_BYTES
        if payload_end + 4 > footer_offset:
            return fail(path, f"chunk {index}: payload overruns the "
                        f"footer")
        (stored,) = struct.unpack_from("<I", data, payload_end)
        if stored != chunk_crc(records, index,
                               data[offset:payload_end]):
            return fail(path, f"chunk {index}: checksum mismatch")
        total += records
        expected_offset = payload_end + 4
    if expected_offset != footer_offset:
        return fail(path, f"{footer_offset - expected_offset} "
                    f"unindexed bytes between chunks and footer")
    if total != announced:
        return fail(path, f"header announces {announced} records, "
                    f"chunks hold {total}")
    print(f"{path}: OK ({total} records in {num_chunks} chunks of "
          f"{chunk_records})")
    return True


def build_v3(records, chunk_records):
    """Write a synthetic v3 byte string, independently of the C++."""
    chunks = []
    out = bytearray()
    header = struct.pack("<4sIQI", b"TLBT", VERSION, records,
                         chunk_records)
    out += header + struct.pack("<I", zlib.crc32(header))
    done = 0
    index = 0
    while done < records:
        count = min(chunk_records, records - done)
        payload = bytes((done + i) % 251
                        for i in range(count * RECORD_BYTES))
        chunks.append((len(out), count))
        out += payload + struct.pack("<I",
                                     chunk_crc(count, index, payload))
        done += count
        index += 1
    footer_offset = len(out)
    footer = struct.pack("<4sQ", b"TLCF", len(chunks))
    for offset, count in chunks:
        footer += struct.pack("<QI", offset, count)
    out += footer + struct.pack("<I", zlib.crc32(footer))
    out += struct.pack("<QI", footer_offset,
                       trailer_crc(footer_offset))
    return bytes(out)


def selftest():
    """The validator must pass a well-formed file and catch damage."""
    clean = build_v3(records=100, chunk_records=16)
    corruptions = [
        ("chunk payload bit flip",
         lambda b: b[:40] + bytes([b[40] ^ 1]) + b[41:]),
        ("torn trailer", lambda b: b[:-5]),
        ("footer magic smashed",
         lambda b: b.replace(b"TLCF", b"XXXX", 1)),
        ("record count inflated",
         lambda b: b[:8] + struct.pack("<Q", 101) + b[16:]),
        ("wrong version", lambda b: b[:4] + b"\x02" + b[5:]),
    ]
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "clean.tl3")
        with open(path, "wb") as handle:
            handle.write(clean)
        if not validate(path):
            ok = fail("selftest", "rejected a well-formed file")
        for name, corrupt in corruptions:
            bad = os.path.join(tmp, "bad.tl3")
            with open(bad, "wb") as handle:
                handle.write(corrupt(clean))
            print(f"selftest: expect a failure for: {name}")
            if validate(bad):
                ok = fail("selftest", f"accepted damage: {name}")
    if ok:
        print("selftest: OK")
    return ok


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return 0 if selftest() else 1
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    results = [validate(path) for path in argv[1:]]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
