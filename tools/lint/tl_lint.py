#!/usr/bin/env python3
"""Repo-specific lint gate for the two-level predictor library.

Rules (all scoped to src/; examples/ and bench/ are CLI front ends and
exempt):

  fatal-ratchet   fatal() is the user-error exit for CLI front ends and
                  for documented fatal()-shims around Status-returning
                  APIs. Library code must not grow new call sites: each
                  file's count of real fatal( calls (comments and
                  string literals stripped) may not exceed the baseline
                  recorded below. Migrating a file to Status/StatusOr
                  lowers its ceiling permanently (run with
                  --update-baseline and paste the output).

  getenv          Environment lookups make library behaviour depend on
                  ambient process state, which breaks reproducibility
                  of sweeps. Only the two blessed option-load sites may
                  call std::getenv.

  nodiscard       Status and StatusOr must stay class-level
                  [[nodiscard]] so that *every* function returning them
                  warns when the result is dropped; no per-function
                  annotation can be forgotten that way.

  thread          Raw std::thread has no exception-propagating join and
                  bypasses the pool's worker accounting; all
                  parallelism goes through util/thread_pool.

  catch-all       A bare `catch (...)` erases the failure it caught:
                  nothing downstream can distinguish a transient
                  fault from a corrupted run, and the supervisor's
                  retry/degrade logic depends on that distinction.
                  Library code may not grow new catch-all sites
                  beyond the per-file baseline; a handler that
                  demonstrably converts the exception into a Status
                  (or rethrows) may opt out with
                  `// tl-lint: allow(catch-all)` plus a comment
                  saying what it records.

  oracle-isolation
                  The differential-testing witness (src/oracle/) may
                  depend on the engine, never the reverse: an engine
                  file including an oracle header could let reference
                  semantics leak into the implementation under test,
                  making the differential harness circular. No file in
                  src/predictor/ or src/sim/ may include "oracle/...".

  iostream        Library code must not write to std::cout/std::cerr
                  (or include <iostream>): ad-hoc printing bypasses the
                  structured observability surfaces — inform()/warn()
                  for diagnostics, EventLog for timelines, RunManifest
                  for results — and iostream globals add static-init
                  weight to every translation unit.

  raw-mutex       All locking goes through the annotated wrappers
                  (tl::Mutex, tl::MutexLock, tl::CondVar in
                  util/mutex.hh) so Clang Thread Safety Analysis sees
                  every acquire/release. A raw std::mutex or
                  std::condition_variable is invisible to the analysis
                  and silently re-opens the class of bugs the
                  annotation pass closed; only util/mutex.hh itself may
                  name the std primitives.

  layering        Quoted includes in src/ must respect the layer DAG
                  (util <- trace <- isa/predictor <- workloads <- sim;
                  oracle sees predictor/trace/util only). The DAG is
                  what keeps the engine's translation units small and
                  lets tools reason about one layer at a time; a
                  back-edge (util including sim/, predictor including
                  workloads/) couples layers that CMake links as
                  separate libraries and eventually cycles. Checked
                  from the source text, so it holds for every build
                  configuration at once, not just the one that produced
                  a compile_commands.json.

  artifact-placement
                  Benchmark and run artifacts (BENCH_*.json,
                  RUN_*.json) are scratch output wherever a binary
                  happens to run; the only blessed homes for
                  *committed* copies are bench/baselines/ (perf
                  baselines) and tests/golden/ (golden figures). A
                  stray tracked artifact silently becomes a fake
                  reference — this rule checks `git ls-files` so one
                  can never land again. Skipped when git (or the work
                  tree) is unavailable.

A line may opt out of a rule with a trailing comment:

    legacy_call();  // tl-lint: allow(fatal-ratchet)

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# Per-file ceilings for real fatal() call sites (comments/strings
# stripped). Regenerate with --update-baseline after burning one down.
FATAL_BASELINE = {
    "src/isa/assembler.cc": 2,
    "src/isa/cpu.cc": 10,
    "src/isa/program.cc": 6,
    "src/oracle/reference_two_level.cc": 1,
    "src/predictor/automaton.cc": 7,
    "src/predictor/branch_history_table.cc": 1,
    "src/predictor/btb.cc": 1,
    "src/predictor/cost_model.cc": 6,
    "src/predictor/factory.cc": 3,
    "src/predictor/history_register.hh": 1,
    "src/predictor/indirect.cc": 1,
    "src/predictor/packed_pht.cc": 1,
    "src/predictor/pattern_table.cc": 1,
    "src/predictor/return_stack.cc": 1,
    "src/predictor/spec.cc": 1,
    "src/predictor/static_training.cc": 3,
    "src/predictor/tournament.cc": 2,
    "src/predictor/two_level.cc": 1,
    "src/sim/analysis.cc": 2,
    "src/sim/experiment.cc": 1,
    "src/sim/multiprogram.cc": 1,
    "src/sim/pipeline.cc": 2,
    "src/sim/supervisor.cc": 1,
    "src/sim/sweep.cc": 2,
    "src/trace/filter.cc": 3,
    "src/trace/io.cc": 4,
    "src/trace/synthetic.cc": 1,
    "src/util/status.cc": 1,
    "src/workloads/doduc.cc": 1,
    "src/workloads/eqntott.cc": 1,
    "src/workloads/espresso.cc": 1,
    "src/workloads/fpppp.cc": 1,
    "src/workloads/gcc.cc": 1,
    "src/workloads/li.cc": 1,
    "src/workloads/matrix300.cc": 1,
    "src/workloads/registry.cc": 1,
    "src/workloads/spice2g6.cc": 1,
    "src/workloads/tomcatv.cc": 1,
    "src/workloads/workload.cc": 1,
}

# Per-file ceilings for bare `catch (...)` handlers. The one grand-
# fathered site rethrows through the pool's exception_ptr plumbing;
# new handlers must record a Status and opt out explicitly.
CATCH_ALL_BASELINE = {
    "src/util/thread_pool.cc": 1,
}

GETENV_ALLOWED = {
    "src/sim/experiment.cc",
    "src/sim/report.cc",
}

THREAD_ALLOWED = {
    "src/util/thread_pool.hh",
    "src/util/thread_pool.cc",
}

# The one file allowed to name the raw std locking primitives: the
# annotated wrapper that everything else uses instead.
MUTEX_ALLOWED = {
    "src/util/mutex.hh",
}

# Allowed quoted-include targets per src/ top-level directory (the
# file's own directory is always allowed). This is the link-time DAG
# from src/CMakeLists.txt, restated for the include graph.
LAYER_DEPS = {
    "util": set(),
    "trace": {"util"},
    "isa": {"trace", "util"},
    "predictor": {"trace", "util"},
    "workloads": {"isa", "trace", "util"},
    "sim": {"predictor", "workloads", "isa", "trace", "util"},
    "oracle": {"predictor", "trace", "util"},
}

ALLOW_RE = re.compile(r"//\s*tl-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or \
               (state == "char" and c == "'"):
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line):
    match = ALLOW_RE.search(raw_line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group(1).split(",")}


FATAL_CALL_RE = re.compile(r"(?<![\w.])fatal\s*\(")
FATAL_DECL_RE = re.compile(r"void\s+fatal\s*\(")  # the prototype itself
GETENV_RE = re.compile(r"(?<![\w.])(?:std::)?getenv\s*\(")
THREAD_RE = re.compile(r"std::thread\b(?!::hardware_concurrency)")
CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
IOSTREAM_RE = re.compile(r"std::c(?:out|err)\b|#\s*include\s*<iostream>")
ORACLE_INCLUDE_RE = re.compile(r'#\s*include\s*"oracle/')
# Engine directories that must never see reference semantics.
ORACLE_FORBIDDEN_PREFIXES = ("src/predictor/", "src/sim/")
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def lint_file(path, rel, violations, fatal_counts):
    text = path.read_text()
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()

    fatal_count = 0
    catch_all_count = 0
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        allowed = allowed_rules(raw)

        if CATCH_ALL_RE.search(code) and "catch-all" not in allowed:
            catch_all_count += len(CATCH_ALL_RE.findall(code))

        if FATAL_CALL_RE.search(code) and "fatal-ratchet" not in allowed:
            fatal_count += len(FATAL_CALL_RE.findall(code)) - \
                len(FATAL_DECL_RE.findall(code))

        if GETENV_RE.search(code) and rel not in GETENV_ALLOWED and \
           "getenv" not in allowed:
            violations.append(
                (rel, lineno, "getenv",
                 "std::getenv outside the blessed option-load sites "
                 "(%s)" % ", ".join(sorted(GETENV_ALLOWED))))

        if THREAD_RE.search(code) and rel not in THREAD_ALLOWED and \
           "thread" not in allowed:
            violations.append(
                (rel, lineno, "thread",
                 "raw std::thread; use util/thread_pool instead"))

        # The include path is a string literal, so test the raw line.
        if ORACLE_INCLUDE_RE.search(raw) and \
           rel.startswith(ORACLE_FORBIDDEN_PREFIXES) and \
           "oracle-isolation" not in allowed:
            violations.append(
                (rel, lineno, "oracle-isolation",
                 "engine code must not include oracle/ headers; the "
                 "differential witness depends on the engine, never "
                 "the reverse"))

        if IOSTREAM_RE.search(code) and "iostream" not in allowed:
            violations.append(
                (rel, lineno, "iostream",
                 "raw std::cout/std::cerr/<iostream> in library code; "
                 "use inform()/warn(), EventLog, or RunManifest"))

        if RAW_MUTEX_RE.search(code) and rel not in MUTEX_ALLOWED and \
           "raw-mutex" not in allowed:
            violations.append(
                (rel, lineno, "raw-mutex",
                 "raw std locking primitive; use tl::Mutex/MutexLock/"
                 "CondVar (util/mutex.hh) so thread-safety analysis "
                 "sees the acquire/release"))

        # Include paths are string literals, so test the raw line.
        layer = rel.split("/")[1] if rel.count("/") >= 2 else None
        include = QUOTED_INCLUDE_RE.search(raw)
        if layer in LAYER_DEPS and include and \
           "layering" not in allowed:
            target = include.group(1).split("/")[0] \
                if "/" in include.group(1) else layer
            if target in LAYER_DEPS and target != layer and \
               target not in LAYER_DEPS[layer]:
                violations.append(
                    (rel, lineno, "layering",
                     'src/%s/ must not include "%s/..." — allowed '
                     "layers: %s (see the DAG in tl_lint.py)"
                     % (layer, target,
                        ", ".join(sorted(LAYER_DEPS[layer] | {layer})))))

    if catch_all_count > CATCH_ALL_BASELINE.get(rel, 0):
        violations.append(
            (rel, 0, "catch-all",
             "%d bare catch (...) handler(s), baseline allows %d — "
             "record the failure as a Status (then opt out with "
             "tl-lint: allow(catch-all)) instead of swallowing it"
             % (catch_all_count, CATCH_ALL_BASELINE.get(rel, 0))))

    if fatal_count:
        fatal_counts[rel] = fatal_count
    ceiling = FATAL_BASELINE.get(rel, 0)
    if fatal_count > ceiling:
        violations.append(
            (rel, 0, "fatal-ratchet",
             "%d fatal() call sites, baseline allows %d — return "
             "Status/StatusOr from library code instead (or, for a "
             "documented shim, raise the baseline in tl_lint.py)"
             % (fatal_count, ceiling)))


ARTIFACT_RE = re.compile(r"(?:^|/)(?:BENCH|RUN)_[^/]*\.json$")
ARTIFACT_ALLOWED_DIRS = ("bench/baselines/", "tests/golden/")


def lint_artifact_placement(repo, violations):
    """Tracked BENCH_*/RUN_* artifacts may live only in the blessed
    reference directories. Uses git ls-files; silently skipped when
    git is unavailable (e.g. linting an exported tarball)."""
    import subprocess
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo), "ls-files"],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return
    if proc.returncode != 0:
        return
    for rel in proc.stdout.splitlines():
        if not ARTIFACT_RE.search(rel):
            continue
        if rel.startswith(ARTIFACT_ALLOWED_DIRS):
            continue
        violations.append(
            (rel, 0, "artifact-placement",
             "tracked benchmark/run artifact outside %s — committed "
             "reference copies live there; everything else is scratch "
             "output and belongs in .gitignore"
             % " or ".join(ARTIFACT_ALLOWED_DIRS)))


def lint_nodiscard(repo, violations):
    rel = "src/util/status_or.hh"
    if not (repo / rel).is_file():
        return  # fixture trees in test_tl_lint.py omit it
    text = (repo / rel).read_text()
    for cls in ("Status", "StatusOr"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+%s\b" % cls, text):
            violations.append(
                (rel, 0, "nodiscard",
                 "class %s must be declared [[nodiscard]] so dropped "
                 "results warn everywhere" % cls))


def run_lint(repo):
    """Lint the tree rooted at @p repo (a Path).

    Returns (violations, fatal_counts, files_scanned); violations is a
    list of (rel_path, lineno, rule, message) tuples, lineno 0 for
    whole-file rules. Importable so tools/lint/test_tl_lint.py can run
    every rule against fixture trees without spawning a process.
    """
    violations = []
    fatal_counts = {}
    files = 0
    src = repo / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cc", ".hh"):
            continue
        files += 1
        rel = path.relative_to(repo).as_posix()
        lint_file(path, rel, violations, fatal_counts)
    lint_nodiscard(repo, violations)
    lint_artifact_placement(repo, violations)
    return violations, fatal_counts, files


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None,
                        help="repository root (default: two levels up "
                        "from this script)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="print the current fatal() counts as a "
                        "replacement FATAL_BASELINE dict and exit")
    args = parser.parse_args()

    repo = Path(args.repo) if args.repo else \
        Path(__file__).resolve().parent.parent.parent
    if not (repo / "src").is_dir():
        print("tl_lint: no src/ under %s" % repo, file=sys.stderr)
        return 2

    violations, fatal_counts, files = run_lint(repo)

    if args.update_baseline:
        print("FATAL_BASELINE = {")
        for rel in sorted(fatal_counts):
            print('    "%s": %d,' % (rel, fatal_counts[rel]))
        print("}")
        return 0

    for rel, lineno, rule, message in sorted(violations):
        location = "%s:%d" % (rel, lineno) if lineno else rel
        print("%s: [%s] %s" % (location, rule, message))
    if violations:
        print("tl_lint: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    print("tl_lint: clean (%d files)" % files)
    return 0


if __name__ == "__main__":
    sys.exit(main())
