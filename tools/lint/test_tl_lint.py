#!/usr/bin/env python3
"""Unit tests for tl_lint.py: each rule is exercised against a small
fixture tree in a temp directory — one test proves the rule trips on a
violating file, and most also prove the documented escape hatches
(allow-comments, baselines, blessed files) still work.

Run directly (python3 tools/lint/test_tl_lint.py) or via ctest
(lint_selftest).
"""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import tl_lint  # noqa: E402  (path set up above)


class FixtureTree:
    """A throwaway repo layout: write(relpath, text), then lint()."""

    def __init__(self, root):
        self.root = Path(root)

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def lint(self):
        violations, _, _ = tl_lint.run_lint(self.root)
        return violations

    def rules(self):
        return [rule for _, _, rule, _ in self.lint()]


class TlLintTest(unittest.TestCase):

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = FixtureTree(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def test_clean_tree_has_no_violations(self):
        self.tree.write("src/util/thing.cc",
                        '#include "util/thing.hh"\n'
                        "int tlThing() { return 1; }\n")
        self.assertEqual(self.tree.lint(), [])

    # ------------------------------------------------------------------
    # fatal-ratchet
    # ------------------------------------------------------------------

    def test_fatal_ratchet_trips_above_baseline(self):
        # No baseline entry for this path => ceiling 0.
        self.tree.write("src/util/fresh.cc",
                        'void f() { fatal("boom %d", 1); }\n')
        self.assertIn("fatal-ratchet", self.tree.rules())

    def test_fatal_ratchet_respects_baseline_ceiling(self):
        # src/util/status.cc has a baseline of 1 in the real repo.
        self.assertEqual(tl_lint.FATAL_BASELINE["src/util/status.cc"], 1)
        self.tree.write("src/util/status.cc",
                        'void f() { fatal("boom"); }\n')
        self.assertNotIn("fatal-ratchet", self.tree.rules())

    def test_fatal_in_comment_or_string_does_not_count(self):
        self.tree.write("src/util/doc.cc",
                        "// fatal(...) is documented here\n"
                        'const char *kMsg = "fatal(oops)";\n')
        self.assertNotIn("fatal-ratchet", self.tree.rules())

    def test_fatal_allow_comment_opts_out(self):
        self.tree.write(
            "src/util/shim.cc",
            'void f() { fatal("x"); }  // tl-lint: allow(fatal-ratchet)\n')
        self.assertNotIn("fatal-ratchet", self.tree.rules())

    # ------------------------------------------------------------------
    # getenv
    # ------------------------------------------------------------------

    def test_getenv_trips_outside_blessed_sites(self):
        self.tree.write("src/trace/io.cc",
                        '#include <cstdlib>\n'
                        'const char *v = std::getenv("HOME");\n')
        self.assertIn("getenv", self.tree.rules())

    def test_getenv_allowed_in_blessed_file(self):
        self.tree.write("src/sim/experiment.cc",
                        'const char *v = std::getenv("TL_THREADS");\n')
        self.assertNotIn("getenv", self.tree.rules())

    # ------------------------------------------------------------------
    # iostream
    # ------------------------------------------------------------------

    def test_iostream_include_and_stream_use_trip(self):
        self.tree.write("src/sim/chatty.cc",
                        "#include <iostream>\n"
                        'void f() { std::cout << "hi"; }\n')
        rules = self.tree.rules()
        self.assertEqual(rules.count("iostream"), 2)

    def test_cerr_trips(self):
        self.tree.write("src/sim/chatty.cc",
                        'void f() { std::cerr << "uh oh"; }\n')
        self.assertIn("iostream", self.tree.rules())

    # ------------------------------------------------------------------
    # catch-all
    # ------------------------------------------------------------------

    def test_catch_all_trips_without_baseline(self):
        self.tree.write("src/sim/swallow.cc",
                        "void f() { try { g(); } catch (...) {} }\n")
        self.assertIn("catch-all", self.tree.rules())

    def test_catch_all_allow_comment_opts_out(self):
        self.tree.write(
            "src/sim/swallow.cc",
            "void f() {\n"
            "    try { g(); }\n"
            "    catch (...) {  // tl-lint: allow(catch-all)\n"
            "    }\n"
            "}\n")
        self.assertNotIn("catch-all", self.tree.rules())

    def test_catch_all_baseline_file_keeps_one(self):
        self.assertEqual(
            tl_lint.CATCH_ALL_BASELINE["src/util/thread_pool.cc"], 1)
        self.tree.write("src/util/thread_pool.cc",
                        "void f() { try { g(); } catch (...) {} }\n")
        self.assertNotIn("catch-all", self.tree.rules())

    # ------------------------------------------------------------------
    # thread
    # ------------------------------------------------------------------

    def test_raw_std_thread_trips(self):
        self.tree.write("src/sim/diy.cc",
                        "#include <thread>\n"
                        "std::thread worker;\n")
        self.assertIn("thread", self.tree.rules())

    def test_hardware_concurrency_is_exempt(self):
        self.tree.write(
            "src/sim/probe.cc",
            "unsigned n = std::thread::hardware_concurrency();\n")
        self.assertNotIn("thread", self.tree.rules())

    # ------------------------------------------------------------------
    # raw-mutex
    # ------------------------------------------------------------------

    def test_raw_mutex_member_trips(self):
        self.tree.write("src/sim/locky.cc",
                        "#include <mutex>\n"
                        "struct S { std::mutex m; };\n")
        rules = self.tree.rules()
        self.assertEqual(rules.count("raw-mutex"), 2)

    def test_raw_lock_guard_and_condvar_trip(self):
        self.tree.write(
            "src/util/locky.cc",
            "void f() { std::lock_guard<tl::Mutex> lock(m); }\n"
            "std::condition_variable cv;\n")
        self.assertEqual(self.tree.rules().count("raw-mutex"), 2)

    def test_mutex_wrapper_file_is_exempt(self):
        self.tree.write("src/util/mutex.hh",
                        "#include <mutex>\n"
                        "struct Mutex { std::mutex raw; };\n")
        self.assertNotIn("raw-mutex", self.tree.rules())

    def test_mutex_in_comment_does_not_trip(self):
        self.tree.write("src/sim/doc.cc",
                        "// a std::mutex would be wrong here\n"
                        "int x;\n")
        self.assertNotIn("raw-mutex", self.tree.rules())

    # ------------------------------------------------------------------
    # layering
    # ------------------------------------------------------------------

    def test_back_edge_include_trips(self):
        self.tree.write("src/util/bad.cc",
                        '#include "sim/engine.hh"\n')
        self.assertIn("layering", self.tree.rules())

    def test_predictor_including_workloads_trips(self):
        self.tree.write("src/predictor/bad.cc",
                        '#include "workloads/workload.hh"\n')
        self.assertIn("layering", self.tree.rules())

    def test_forward_edge_include_is_fine(self):
        self.tree.write("src/sim/good.cc",
                        '#include "predictor/two_level.hh"\n'
                        '#include "workloads/workload.hh"\n'
                        '#include "util/status.hh"\n')
        self.assertNotIn("layering", self.tree.rules())

    def test_same_layer_and_system_includes_are_fine(self):
        self.tree.write("src/trace/good.cc",
                        "#include <vector>\n"
                        '#include "trace/record.hh"\n'
                        '#include "local_detail.hh"\n')
        self.assertNotIn("layering", self.tree.rules())

    def test_layering_allow_comment_opts_out(self):
        self.tree.write(
            "src/util/bridge.cc",
            '#include "sim/engine.hh"  // tl-lint: allow(layering)\n')
        self.assertNotIn("layering", self.tree.rules())

    # ------------------------------------------------------------------
    # oracle-isolation
    # ------------------------------------------------------------------

    def test_engine_including_oracle_trips(self):
        self.tree.write("src/sim/bad.cc",
                        '#include "oracle/reference_two_level.hh"\n')
        self.assertIn("oracle-isolation", self.tree.rules())

    def test_oracle_including_predictor_is_fine(self):
        self.tree.write("src/oracle/witness.cc",
                        '#include "predictor/two_level.hh"\n')
        rules = self.tree.rules()
        self.assertNotIn("oracle-isolation", rules)
        self.assertNotIn("layering", rules)

    # ------------------------------------------------------------------
    # nodiscard
    # ------------------------------------------------------------------

    def test_nodiscard_trips_when_annotation_missing(self):
        self.tree.write("src/util/status_or.hh",
                        "class Status {};\n"
                        "template <typename T> class StatusOr {};\n")
        self.assertEqual(self.tree.rules().count("nodiscard"), 2)

    def test_nodiscard_satisfied(self):
        self.tree.write(
            "src/util/status_or.hh",
            "class [[nodiscard]] Status {};\n"
            "template <typename T> class [[nodiscard]] StatusOr {};\n")
        self.assertNotIn("nodiscard", self.tree.rules())

    # ------------------------------------------------------------------
    # artifact-placement (needs a real git index)
    # ------------------------------------------------------------------

    def _git(self, *argv):
        return subprocess.run(["git", "-C", str(self.tree.root)] +
                              list(argv), capture_output=True, text=True)

    def test_tracked_artifact_outside_blessed_dirs_trips(self):
        if self._git("init", "-q").returncode != 0:
            self.skipTest("git unavailable")
        self.tree.write("src/util/ok.cc", "int x;\n")
        self.tree.write("BENCH_throughput.json", "{}\n")
        self.tree.write("bench/baselines/BENCH_throughput.json", "{}\n")
        self.tree.write("tests/golden/RUN_fig11.json", "{}\n")
        self._git("add", "-A")
        violations = [v for v in self.tree.lint()
                      if v[2] == "artifact-placement"]
        self.assertEqual(len(violations), 1)
        self.assertEqual(violations[0][0], "BENCH_throughput.json")

    def test_untracked_artifact_is_scratch_output(self):
        if self._git("init", "-q").returncode != 0:
            self.skipTest("git unavailable")
        self.tree.write("src/util/ok.cc", "int x;\n")
        self._git("add", "-A")
        # Written after the add => untracked => not a fake reference.
        self.tree.write("RUN_scratch.json", "{}\n")
        self.assertNotIn("artifact-placement", self.tree.rules())

    # ------------------------------------------------------------------
    # the comment/string stripper itself
    # ------------------------------------------------------------------

    def test_strip_preserves_line_numbers(self):
        text = 'a\n/* b\nc */ d\n"e\\n"\n'
        stripped = tl_lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("b", stripped)
        self.assertNotIn("e", stripped)
        self.assertIn("d", stripped)

    # ------------------------------------------------------------------
    # the real tree must be clean with the rules in this checkout
    # ------------------------------------------------------------------

    def test_real_repo_is_clean(self):
        repo = Path(__file__).resolve().parent.parent.parent
        violations, _, files = tl_lint.run_lint(repo)
        self.assertEqual(
            violations, [],
            "tl_lint violations in the working tree:\n" +
            "\n".join("%s:%d [%s] %s" % v for v in violations))
        self.assertGreater(files, 100)


if __name__ == "__main__":
    unittest.main()
