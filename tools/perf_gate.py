#!/usr/bin/env python3
"""Throughput regression gate for bench/throughput manifests.

Compares the headline throughput of a freshly produced
BENCH_throughput.json (its `notes.headline.MpredPerSec`, the best-of-N
bare serial sweep measured by bench/throughput.cc) against the
committed baseline under bench/baselines/. The gate fails when the
fresh rate falls more than --tolerance (default 15%) below the
baseline rate.

Unlike the golden-figure comparator (tools/golden_diff.py), which
demands bit-level agreement because accuracy is deterministic, raw
speed is machine- and load-dependent: the tolerance absorbs scheduler
noise while still catching an accidental re-virtualization or a hot-
path pessimization, which cost well over 15%. The gate also re-checks
the accuracy handshake: the headline run must report
`identicalToSerial` (counter-for-counter agreement with the supervised
serial sweep), so a "fast but wrong" engine cannot pass.

Accuracy equivalence aside, the gate intentionally ignores everything
else in the manifest — absolute cell timings, parallel speedups — so
it stays meaningful across machines of different speeds as long as
the baseline was produced on the same class of machine (CI pins one
runner type for exactly this reason).

Usage: perf_gate.py [--tolerance FRACTION] BASELINE ACTUAL
Exit:  0 pass, 1 regression or malformed manifest, 2 usage error.
"""

import argparse
import json
import sys


def load_headline(path, problems):
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        problems.append(str(error))
        return None
    if manifest.get("kind") != "run-manifest":
        problems.append(f"{path}: not a run-manifest")
        return None
    headline = manifest.get("notes", {}).get("headline")
    if not isinstance(headline, dict) or \
            "MpredPerSec" not in headline:
        problems.append(
            f"{path}: no notes.headline.MpredPerSec — produced by a "
            f"pre-headline bench/throughput? Regenerate it (see "
            f"bench/baselines/README.md)")
        return None
    budget = manifest.get("notes", {}).get("branchBudget")
    return {
        "rate": float(headline["MpredPerSec"]),
        "nsPerBranch": headline.get("nsPerBranch"),
        "identical": headline.get("identicalToSerial"),
        "budget": budget,
    }


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional Mpred/s drop vs the "
                        "baseline (default: %(default)g)")
    parser.add_argument("baseline", help="committed reference manifest")
    parser.add_argument("actual", help="freshly produced manifest")
    args = parser.parse_args(argv[1:])
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be a fraction in [0, 1)")

    problems = []
    baseline = load_headline(args.baseline, problems)
    actual = load_headline(args.actual, problems)
    for problem in problems:
        print(f"perf_gate: {problem}", file=sys.stderr)
    if baseline is None or actual is None:
        return 1

    failed = False
    if baseline["budget"] != actual["budget"]:
        print(f"perf_gate: branch budgets differ (baseline "
              f"{baseline['budget']}, actual {actual['budget']}) — "
              f"rates are not comparable across budgets",
              file=sys.stderr)
        failed = True
    if actual["identical"] is not True:
        print("perf_gate: headline run is not identicalToSerial — "
              "the fast path disagrees with the supervised serial "
              "sweep, so its speed is meaningless", file=sys.stderr)
        failed = True

    floor = baseline["rate"] * (1.0 - args.tolerance)
    delta = (actual["rate"] - baseline["rate"]) / baseline["rate"]
    line = (f"baseline {baseline['rate']:.1f} Mpred/s, "
            f"actual {actual['rate']:.1f} Mpred/s "
            f"({delta:+.1%}), floor {floor:.1f} "
            f"(tolerance {args.tolerance:.0%})")
    if actual["rate"] < floor:
        print(f"perf_gate: FAIL: {line}", file=sys.stderr)
        failed = True
    elif not failed:
        print(f"perf_gate: ok: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
