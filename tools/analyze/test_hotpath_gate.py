#!/usr/bin/env python3
"""Self-test for hotpath_gate.py.

A gate that never trips is indistinguishable from a gate that works,
so this test compiles two fixture translation units at -O3 — one
honouring the hot-path discipline, one violating it three ways — and
asserts the gate passes the first, fails the second with the expected
categories, and refuses (exit 2) to bless an empty hot-function
selection. Runs under ctest as hotpath_gate_selftest.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
GATE = HERE / "hotpath_gate.py"
FIXTURES = HERE / "fixtures"
CXX = os.environ.get("CXX", "g++")


def compile_fixture(source, outdir):
    obj = Path(outdir) / (source.stem + ".o")
    subprocess.run([CXX, "-O3", "-std=c++20", "-c", str(source),
                    "-o", str(obj)], check=True)
    return obj


def run_gate(*argv):
    return subprocess.run([sys.executable, str(GATE)] +
                          [str(a) for a in argv],
                          capture_output=True, text=True)


class HotpathGateTest(unittest.TestCase):

    @classmethod
    def setUpClass(cls):
        if shutil.which(CXX) is None:
            raise unittest.SkipTest("no C++ compiler (%s)" % CXX)
        if shutil.which("objdump") is None:
            raise unittest.SkipTest("no objdump")
        cls._tmp = tempfile.TemporaryDirectory()
        cls.clean_obj = compile_fixture(
            FIXTURES / "hotpath_clean.cc", cls._tmp.name)
        cls.violation_obj = compile_fixture(
            FIXTURES / "hotpath_violation.cc", cls._tmp.name)
        cls.attribution_obj = compile_fixture(
            FIXTURES / "hotpath_attribution.cc", cls._tmp.name)

    @classmethod
    def tearDownClass(cls):
        cls._tmp.cleanup()

    def test_clean_lane_passes(self):
        report = Path(self._tmp.name) / "clean.json"
        proc = run_gate(self.clean_obj, "--report", report)
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)
        data = json.loads(report.read_text())
        self.assertTrue(data["ok"])
        self.assertEqual(data["violations"], [])
        self.assertEqual(len(data["hotFunctions"]), 1)
        self.assertIn("runFastTwoLevelCleanLane",
                      data["hotFunctions"][0])

    def test_violating_lane_trips_every_category(self):
        report = Path(self._tmp.name) / "violation.json"
        proc = run_gate(self.violation_obj, "--report", report)
        self.assertEqual(proc.returncode, 1, proc.stderr + proc.stdout)
        data = json.loads(report.read_text())
        self.assertFalse(data["ok"])
        categories = {v["category"] for v in data["violations"]}
        self.assertIn("locking", categories)   # pthread_mutex_lock
        self.assertIn("indirect", categories)  # call through Hook
        self.assertIn("throw", categories)     # throw correct;
        # Every violation names the lane, so CI output is actionable.
        for violation in data["violations"]:
            self.assertIn("runFastTwoLevelViolatingLane",
                          violation["function"])

    def test_attribution_in_lane_trips_the_gate(self):
        report = Path(self._tmp.name) / "attribution.json"
        proc = run_gate(self.attribution_obj, "--report", report)
        self.assertEqual(proc.returncode, 1, proc.stderr + proc.stdout)
        data = json.loads(report.read_text())
        self.assertFalse(data["ok"])
        self.assertEqual({v["category"] for v in data["violations"]},
                         {"attribution"})
        symbols = " ".join(v["symbol"] for v in data["violations"])
        self.assertIn("MissAttributor", symbols)
        self.assertIn("SpaceSaving", symbols)
        self.assertIn("attributionObserve", symbols)
        for violation in data["violations"]:
            self.assertIn("runFastTwoLevelAttributedLane",
                          violation["function"])

    def test_empty_selection_is_an_error_not_a_pass(self):
        proc = run_gate(self.clean_obj,
                        "--hot-pattern", "NoSuchFunctionAnywhere")
        self.assertEqual(proc.returncode, 2, proc.stderr + proc.stdout)
        self.assertIn("never pass", proc.stderr)

    def test_missing_object_is_a_usage_error(self):
        proc = run_gate(Path(self._tmp.name) / "nonexistent.o")
        self.assertEqual(proc.returncode, 2, proc.stderr + proc.stdout)

    def test_real_engine_object_when_built(self):
        """The gate's reason to exist: the shipped engine TU is clean.

        Skipped when the default build tree is absent (the ctest entry
        runs the gate against the real object unconditionally)."""
        repo = HERE.parent.parent
        engine = (repo / "build" / "src" / "CMakeFiles" / "tl_sim.dir"
                  / "sim" / "engine.cc.o")
        if not engine.is_file():
            self.skipTest("default build tree not present")
        proc = run_gate(engine)
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)
        self.assertIn("clean", proc.stdout)


if __name__ == "__main__":
    unittest.main()
