#!/usr/bin/env python3
"""Hot-path discipline gate: prove, from the compiled object code, that
the simulation inner loops stay free of slow-path machinery.

The engine's measured throughput rests on the FastTwoLevel lanes
(src/sim/engine.cc) being tight integer loops: no locks, no throws, no
RTTI, no dispatch the branch predictor being *simulated* would blush
at. Source review cannot prove that — an innocent-looking call can
drag in operator new or an exception edge after inlining — so this
gate inspects the -O3 object file instead: it disassembles every
function whose mangled name matches a hot pattern (default:
FastTwoLevel, which covers the per-configuration lanes and the
runFastTwoLevel dispatcher) and fails if the code references a banned
symbol category or contains an indirect call/jump.

Banned categories (regexes over the *mangled* relocation target):

  allocation   operator new/delete, malloc family. The PHT grows by
               first-touch inside the lane, so the vector-growth pair
               is explicitly allowlisted below — everything else fails.
  locking      pthread_* / __gthrw*: a lock in a lane serializes the
               sweep and invalidates every throughput number.
  throw        __cxa_throw / __cxa_allocate_exception / the libstdc++
               __throw_* helpers: raising an exception in a lane means
               a failure path grew into the measured region. (The
               length_error guard on vector growth is allowlisted: it
               is the unreachable overflow check, not a live path.)
  rtti         __dynamic_cast / typeinfo: the one sanctioned
               dynamic_cast per run lives in simulateDispatch(), which
               is deliberately NOT a hot function.
  attribution  MissAttributor / SpaceSaving / attributionObserve: the
               misprediction-provenance layer (sim/attribution.hh) is
               generic-tier-only by design — simulateDispatch() falls
               back to the virtual tier when it is requested. Any of
               its symbols inside a lane means the `if constexpr`
               guard in engine.hh stopped holding.
  indirect     `call *...` / `jmp *...` instructions: virtual or
               function-pointer dispatch inside a lane defeats the
               whole two-tier devirtualization design. Not waivable by
               symbol (there is no symbol); waivable per function via
               ALLOWED_INDIRECT, currently empty.

Unknown symbols (memcpy, PackedPatternTable ctors, contextSwitch, ...)
are fine: the gate bans categories, it does not enumerate goodness.

Exit status: 0 clean, 1 violations, 2 usage/toolchain error (including
"no hot function matched" — an empty selection must never pass).
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

BANNED = [
    ("allocation",
     re.compile(r"^(_Znwm|_Znam|_ZdlPv|_ZdaPv|malloc$|calloc$|"
                r"realloc$|free$|posix_memalign$|aligned_alloc$)")),
    ("locking",
     re.compile(r"^(pthread_(mutex|cond|rwlock|spin|once)|__gthrw)")),
    ("throw",
     re.compile(r"^(__cxa_throw$|__cxa_allocate_exception$|"
                r"_ZSt\d+__throw_)")),
    ("rtti",
     re.compile(r"^(__dynamic_cast$|_ZTI|_ZTV|_ZTS)")),
    # Length-prefixed mangled forms, so e.g. a hypothetical
    # "MissAttributorish" class would not false-positive.
    ("attribution",
     re.compile(r"^_Z.*(?:14MissAttributor|11SpaceSavingI|"
                r"18attributionObserve)")),
]

# Symbol-level waivers: mangled name -> reason. Every entry documents a
# slow-path symbol the hot lanes legitimately reference today; adding
# to this list is a reviewed decision, not a build fix.
ALLOWED = {
    "_Znwm":
        "PHT first-touch growth: a pattern-table page is allocated the "
        "first time a history pattern is observed (vector growth), "
        "amortized to zero over the measured region",
    "_ZdlPvm":
        "paired operator delete for the same vector growth/relocation",
    "_ZSt20__throw_length_errorPKc":
        "std::vector's overflow guard on the growth path; unreachable "
        "at any table geometry the spec grammar can express",
}

# Demangled-name substrings whose indirect branches are waived. Empty:
# the lanes are fully devirtualized and must stay that way.
ALLOWED_INDIRECT = set()

# Unwind plumbing is permitted everywhere: landing pads for the
# allowlisted growth path drag these in, and banning them would really
# be banning the (allowlisted) allocation again. An actual raise still
# fails via the `throw` category, so this cannot hide a live throw.
UNWIND_OK = re.compile(r"^(_Unwind_|__cxa_(begin_catch|end_catch|"
                       r"rethrow)$|__gxx_personality)")

FUNC_RE = re.compile(r"^[0-9a-f]+ <(.+)>:$")
RELOC_RE = re.compile(r"^\s+[0-9a-f]+:\s+(R_\w+)\s+(\S+)")
INDIRECT_RE = re.compile(r"\b(?:notrack\s+)?(call|jmp)q?\s+\*")
INSN_RE = re.compile(r"^\s+([0-9a-f]+):\s+(?:[0-9a-f]{2} )+\s*(.*)$")


def demangler():
    """Return a best-effort mangled->readable function."""
    cache = {}

    def demangle(name):
        if name not in cache:
            try:
                proc = subprocess.run(["c++filt", name],
                                      capture_output=True, text=True,
                                      timeout=10)
                cache[name] = proc.stdout.strip() or name
            except OSError:
                cache[name] = name
        return cache[name]

    return demangle


def parse_functions(objdump, path):
    """Disassemble @p path; yield (mangled_name, lines) per function."""
    proc = subprocess.run([objdump, "-dr", str(path)],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError("%s -dr %s failed:\n%s"
                           % (objdump, path, proc.stderr))
    name, lines = None, []
    for line in proc.stdout.splitlines():
        match = FUNC_RE.match(line)
        if match:
            if name is not None:
                yield name, lines
            name, lines = match.group(1), []
        elif name is not None:
            lines.append(line)
    if name is not None:
        yield name, lines


def strip_addend(target):
    """`_Znwm-0x4` / `foo+0x10` -> bare symbol."""
    return re.sub(r"[+-]0x[0-9a-f]+$", "", target)


def check_function(obj, name, lines, demangle, report):
    pretty = demangle(name)
    waive_indirect = any(sub in pretty for sub in ALLOWED_INDIRECT)
    for line in lines:
        reloc = RELOC_RE.match(line)
        if reloc:
            symbol = strip_addend(reloc.group(2))
            if symbol.startswith("."):
                continue  # section-relative: constants, cold text
            if UNWIND_OK.match(symbol):
                continue
            for category, pattern in BANNED:
                if not pattern.match(symbol):
                    continue
                entry = {
                    "object": str(obj), "function": pretty,
                    "symbol": symbol, "category": category,
                }
                if symbol in ALLOWED:
                    entry["reason"] = ALLOWED[symbol]
                    report["waived"].append(entry)
                else:
                    report["violations"].append(entry)
            continue
        insn = INSN_RE.match(line)
        if insn and INDIRECT_RE.search(insn.group(2)):
            entry = {
                "object": str(obj), "function": pretty,
                "symbol": insn.group(2).strip(),
                "category": "indirect",
            }
            if waive_indirect:
                entry["reason"] = "function listed in ALLOWED_INDIRECT"
                report["waived"].append(entry)
            else:
                report["violations"].append(entry)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("objects", nargs="+", type=Path,
                        help="compiled object files to inspect")
    parser.add_argument("--hot-pattern", action="append", default=[],
                        help="regex over mangled names selecting hot "
                        "functions (default: FastTwoLevel)")
    parser.add_argument("--report", type=Path, default=None,
                        help="write a JSON report here")
    parser.add_argument("--objdump", default="objdump",
                        help="objdump binary (default: objdump)")
    args = parser.parse_args()

    patterns = [re.compile(p)
                for p in (args.hot_pattern or ["FastTwoLevel"])]
    demangle = demangler()
    report = {
        "objects": [str(p) for p in args.objects],
        "hotPatterns": [p.pattern for p in patterns],
        "hotFunctions": [],
        "waived": [],
        "violations": [],
    }

    try:
        for obj in args.objects:
            if not obj.is_file():
                raise RuntimeError("no such object: %s" % obj)
            for name, lines in parse_functions(args.objdump, obj):
                if not any(p.search(name) for p in patterns):
                    continue
                report["hotFunctions"].append(demangle(name))
                check_function(obj, name, lines, demangle, report)
    except RuntimeError as error:
        print("hotpath_gate: %s" % error, file=sys.stderr)
        return 2

    if not report["hotFunctions"]:
        print("hotpath_gate: no function matched %s in %s — an empty "
              "selection must never pass; fix the pattern or the build"
              % ([p.pattern for p in patterns],
                 [str(o) for o in args.objects]), file=sys.stderr)
        return 2

    report["ok"] = not report["violations"]
    if args.report:
        args.report.write_text(json.dumps(report, indent=2) + "\n")

    for entry in report["violations"]:
        print("VIOLATION [%s] %s in %s (%s)"
              % (entry["category"], entry["symbol"],
                 entry["function"], entry["object"]))
    if report["violations"]:
        print("hotpath_gate: %d violation(s) across %d hot function(s)"
              % (len(report["violations"]),
                 len(report["hotFunctions"])), file=sys.stderr)
        return 1
    print("hotpath_gate: clean — %d hot function(s), %d waived "
          "reference(s)" % (len(report["hotFunctions"]),
                            len(report["waived"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
