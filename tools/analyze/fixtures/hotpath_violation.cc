/**
 * @file
 * Fixture for test_hotpath_gate.py: a lane that breaks the hot-path
 * discipline three ways, so the self-test can prove the gate trips on
 * every banned category it claims to police:
 *
 *   - pthread_mutex_lock/unlock around the loop  -> "locking"
 *   - a call through a volatile function pointer -> "indirect"
 *   - a throw on the exit path                   -> "throw" (and the
 *     exception's typeinfo reference -> "rtti")
 *
 * The volatile pointer defeats -O3 devirtualization, guaranteeing an
 * actual `call *%reg` in the object code rather than an inlined or
 * direct call.
 */

#include <cstdint>

#include <pthread.h>

namespace tlfixture
{

using Hook = std::uint64_t (*)(std::uint64_t);

volatile Hook fastTwoLevelHook = nullptr;
pthread_mutex_t fastTwoLevelLock = PTHREAD_MUTEX_INITIALIZER;

std::uint64_t
runFastTwoLevelViolatingLane(const std::uint8_t *taken, std::uint64_t n)
{
    std::uint64_t correct = 0;
    pthread_mutex_lock(&fastTwoLevelLock);
    for (std::uint64_t i = 0; i < n; ++i) {
        Hook hook = fastTwoLevelHook;
        if (hook)
            correct += hook(taken[i]);
    }
    pthread_mutex_unlock(&fastTwoLevelLock);
    if (correct > n)
        throw correct;
    return correct;
}

} // namespace tlfixture
