/**
 * @file
 * Fixture for test_hotpath_gate.py: a lane that smuggles the
 * misprediction-provenance layer into the measured loop. The three
 * extern declarations mirror the real attribution surface —
 * tl::MissAttributor (sim/attribution.hh), tl::SpaceSaving
 * (util/topk.hh) and the tl::detail::attributionObserve trampoline
 * (sim/engine.hh) — without including the headers, so the calls
 * survive -O3 as relocations to the genuinely mangled names the
 * gate's "attribution" category must recognise.
 *
 * In the real engine this cannot happen: the `if constexpr
 * (std::is_base_of_v<BranchPredictor, P>)` guard keeps attribution
 * out of the FastTwoLevel lanes, and simulateDispatch() routes
 * attributed runs to the virtual tier. This fixture is what the
 * object code would look like if that guard regressed.
 */

#include <cstdint>

namespace tl
{

template <typename Key> class SpaceSaving
{
  public:
    void offer(Key key, std::uint64_t weight);
};

class MissAttributor
{
  public:
    void observe(std::uint64_t pc, bool predicted, bool taken);
};

namespace detail
{
void attributionObserve(MissAttributor &attribution, std::uint64_t pc,
                        bool predicted, bool taken);
} // namespace detail

} // namespace tl

namespace tlfixture
{

std::uint64_t
runFastTwoLevelAttributedLane(const std::uint8_t *taken,
                              std::uint64_t n,
                              tl::MissAttributor &attribution,
                              tl::SpaceSaving<std::uint64_t> &sketch)
{
    std::uint64_t history = 0;
    std::uint64_t correct = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const bool predict = (history & 1) != 0;
        const bool outcome = taken[i] != 0;
        if (predict == outcome)
            ++correct;
        else
            sketch.offer(i, 1);
        attribution.observe(i, predict, outcome);
        tl::detail::attributionObserve(attribution, i, predict,
                                       outcome);
        history = (history << 1) | (outcome ? 1 : 0);
    }
    return correct;
}

} // namespace tlfixture
