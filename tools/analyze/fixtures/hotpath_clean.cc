/**
 * @file
 * Fixture for test_hotpath_gate.py: a lane that honours the hot-path
 * discipline. The function name contains "FastTwoLevel" so the gate's
 * default pattern selects it; the body is the pure integer core of a
 * GAg-style lane — table reads, saturating-counter updates, history
 * shifts — with nothing for the gate to object to.
 */

#include <cstdint>

namespace tlfixture
{

std::uint64_t
runFastTwoLevelCleanLane(const std::uint8_t *taken, std::uint64_t n,
                         std::uint8_t *pht, std::uint64_t mask)
{
    std::uint64_t history = 0;
    std::uint64_t correct = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint8_t &counter = pht[history & mask];
        const bool predict = counter >= 2;
        const bool outcome = taken[i] != 0;
        correct += predict == outcome ? 1 : 0;
        if (outcome) {
            if (counter < 3)
                ++counter;
        } else if (counter > 0) {
            --counter;
        }
        history = (history << 1) | (outcome ? 1 : 0);
    }
    return correct;
}

} // namespace tlfixture
