#!/usr/bin/env bash
# The static verification gate, runnable locally and in CI:
#
#   1. tl_lint.py        — repo-specific rules (fatal ratchet, getenv,
#                          [[nodiscard]], raw threads/mutexes, include
#                          layering) plus its own unit tests
#   2. check_format.sh   — clang-format conformance of changed lines
#   3. hotpath gate      — self-test (must trip on the violation
#                          fixture), then the real engine library if
#                          the default build tree exists
#   4. verify preset     — Debug, -Werror, TL_CHECK/TL_DCHECK enabled,
#                          full test suite (includes every
#                          static_assert proof in the headers)
#   5. thread-safety     — if clang++ is installed: compile with
#                          Clang Thread Safety Analysis promoted to
#                          errors (-Werror=thread-safety)
#   6. cppcheck          — if installed
#   7. clang-tidy        — if installed, over the verify preset's
#                          compile_commands.json
#
# Tools that are not installed are skipped with a notice (the CI image
# installs them; the dev container may not have them). Any *finding*
# from a tool that did run fails the script.
#
# Usage: tools/run_checks.sh [--no-build]
#   --no-build  skip step 3 (the slow one) for a quick pre-commit loop
set -u -o pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build=1
if [ "${1:-}" = "--no-build" ]; then
    build=0
fi

failures=0
note() { printf '== %s\n' "$*"; }

note "tl_lint"
if python3 tools/lint/tl_lint.py; then :; else failures=$((failures+1)); fi

note "tl_lint unit tests"
if python3 tools/lint/test_tl_lint.py; then :; else
    failures=$((failures+1))
fi

note "check_format"
if bash tools/check_format.sh; then :; else failures=$((failures+1)); fi

note "hotpath gate self-test"
if python3 tools/analyze/test_hotpath_gate.py; then :; else
    failures=$((failures+1))
fi

note "hotpath gate (engine hot lanes)"
if [ -f build/src/libtl_sim.a ]; then
    if python3 tools/analyze/hotpath_gate.py build/src/libtl_sim.a; then
        :
    else
        failures=$((failures+1))
    fi
else
    echo "hotpath gate: SKIP (no build/src/libtl_sim.a — run the" \
         "default preset first)"
fi

if [ $build -eq 1 ]; then
    note "verify preset (-Werror Debug build + tests)"
    if cmake --preset verify >/dev/null &&
       cmake --build --preset verify -j "$(nproc)" &&
       ctest --preset verify; then :; else
        failures=$((failures+1))
    fi
else
    note "verify preset: SKIP (--no-build)"
fi

note "clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
    if [ $build -eq 1 ]; then
        if cmake --preset thread-safety >/dev/null &&
           cmake --build --preset thread-safety -j "$(nproc)"; then :
        else
            failures=$((failures+1))
        fi
    else
        echo "thread-safety: SKIP (--no-build)"
    fi
else
    echo "thread-safety: SKIP (clang++ not installed; the analysis" \
         "only runs under Clang)"
fi

note "cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
    # --error-exitcode makes findings fail the gate; the inline
    # suppressions keep the noise-prone checks informational.
    if cppcheck --std=c++20 --language=c++ --enable=warning,performance \
            --inline-suppr --quiet --error-exitcode=1 \
            --suppress=internalAstError \
            -I src src; then :; else failures=$((failures+1)); fi
else
    echo "cppcheck: SKIP (not installed)"
fi

note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 &&
   command -v run-clang-tidy >/dev/null 2>&1; then
    if [ -f build-verify/compile_commands.json ] || {
           [ $build -eq 1 ] || cmake --preset verify >/dev/null; }; then
        if run-clang-tidy -quiet -p build-verify \
               "$repo/src/.*\.cc$"; then :; else
            failures=$((failures+1))
        fi
    else
        echo "clang-tidy: SKIP (no build-verify/compile_commands.json)"
    fi
else
    echo "clang-tidy: SKIP (not installed)"
fi

if [ $failures -ne 0 ]; then
    note "FAILED: $failures check(s) reported problems"
    exit 1
fi
note "all checks passed"
