#!/usr/bin/env bash
# The static verification gate, runnable locally and in CI:
#
#   1. tl_lint.py        — repo-specific rules (fatal ratchet, getenv,
#                          [[nodiscard]], raw threads)
#   2. check_format.sh   — clang-format conformance of changed lines
#   3. verify preset     — Debug, -Werror, TL_CHECK/TL_DCHECK enabled,
#                          full test suite (includes every
#                          static_assert proof in the headers)
#   4. cppcheck          — if installed
#   5. clang-tidy        — if installed, over the verify preset's
#                          compile_commands.json
#
# Tools that are not installed are skipped with a notice (the CI image
# installs them; the dev container may not have them). Any *finding*
# from a tool that did run fails the script.
#
# Usage: tools/run_checks.sh [--no-build]
#   --no-build  skip step 3 (the slow one) for a quick pre-commit loop
set -u -o pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

build=1
if [ "${1:-}" = "--no-build" ]; then
    build=0
fi

failures=0
note() { printf '== %s\n' "$*"; }

note "tl_lint"
if python3 tools/lint/tl_lint.py; then :; else failures=$((failures+1)); fi

note "check_format"
if bash tools/check_format.sh; then :; else failures=$((failures+1)); fi

if [ $build -eq 1 ]; then
    note "verify preset (-Werror Debug build + tests)"
    if cmake --preset verify >/dev/null &&
       cmake --build --preset verify -j "$(nproc)" &&
       ctest --preset verify; then :; else
        failures=$((failures+1))
    fi
else
    note "verify preset: SKIP (--no-build)"
fi

note "cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
    # --error-exitcode makes findings fail the gate; the inline
    # suppressions keep the noise-prone checks informational.
    if cppcheck --std=c++20 --language=c++ --enable=warning,performance \
            --inline-suppr --quiet --error-exitcode=1 \
            --suppress=internalAstError \
            -I src src; then :; else failures=$((failures+1)); fi
else
    echo "cppcheck: SKIP (not installed)"
fi

note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 &&
   command -v run-clang-tidy >/dev/null 2>&1; then
    if [ -f build-verify/compile_commands.json ] || {
           [ $build -eq 1 ] || cmake --preset verify >/dev/null; }; then
        if run-clang-tidy -quiet -p build-verify \
               "$repo/src/.*\.cc$"; then :; else
            failures=$((failures+1))
        fi
    else
        echo "clang-tidy: SKIP (no build-verify/compile_commands.json)"
    fi
else
    echo "clang-tidy: SKIP (not installed)"
fi

if [ $failures -ne 0 ]; then
    note "FAILED: $failures check(s) reported problems"
    exit 1
fi
note "all checks passed"
