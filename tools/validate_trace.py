#!/usr/bin/env python3
"""Structurally validate TRACE_*.json Chrome trace-event files.

The sweep timelines (util/trace_event.hh) claim to be loadable by the
Perfetto UI / chrome://tracing. This validator enforces the subset of
the trace-event format those viewers require, so a malformed trace
fails CI instead of failing silently in a browser nobody opened:

  * top-level JSON object with a non-empty "traceEvents" list;
  * every event carries ph / name / pid / tid with the right types,
    and ph is one the writer emits ("X" complete, "i" instant,
    "M" metadata);
  * "X" events carry non-negative integer ts and dur plus a category;
  * "i" events carry ts, a category, and thread scope ("s": "t");
  * "M" events are "thread_name" records naming a lane via args.name;
  * at least one span and one thread-name record exist (a trace with
    no lanes or no spans renders as an empty screen).

Usage: validate_trace.py TRACE.json [TRACE.json ...]
Exit:  0 when every file validates; 1 otherwise.
"""

import json
import sys

PHASES = {"X", "i", "M"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_common(path, index, event):
    if not isinstance(event, dict):
        return fail(path, f"event {index}: expected object")
    for key, kind in (("ph", str), ("name", str)):
        if not isinstance(event.get(key), kind) or not event.get(key):
            return fail(path,
                        f"event {index}: missing/empty '{key}'")
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or \
                value < 0:
            return fail(path, f"event {index}: '{key}' must be a "
                        f"non-negative integer, got {value!r}")
    if event["ph"] not in PHASES:
        return fail(path, f"event {index}: unknown phase "
                    f"{event['ph']!r} (writer emits {sorted(PHASES)})")
    return True


def check_timestamped(path, index, event, keys):
    for key in keys:
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or \
                value < 0:
            return fail(path, f"event {index}: '{key}' must be a "
                        f"non-negative integer, got {value!r}")
    if not isinstance(event.get("cat"), str) or not event["cat"]:
        return fail(path, f"event {index}: missing category")
    return True


def validate(path):
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, str(error))
    if not isinstance(trace, dict):
        return fail(path, "top level must be an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "'traceEvents' must be a non-empty list")

    ok = True
    spans = names = 0
    for index, event in enumerate(events):
        if not check_common(path, index, event):
            ok = False
            continue
        phase = event["ph"]
        if phase == "X":
            spans += 1
            ok = check_timestamped(path, index, event,
                                   ("ts", "dur")) and ok
        elif phase == "i":
            ok = check_timestamped(path, index, event, ("ts",)) and ok
            if event.get("s") != "t":
                ok = fail(path, f"event {index}: instant events must "
                          f"be thread-scoped ('s': 't')")
        else:  # "M"
            if event["name"] != "thread_name":
                ok = fail(path, f"event {index}: unexpected metadata "
                          f"record {event['name']!r}")
            elif not isinstance(event.get("args", {}).get("name"),
                                str):
                ok = fail(path, f"event {index}: thread_name needs "
                          f"args.name")
            else:
                names += 1
    if spans == 0:
        ok = fail(path, "no complete ('X') events — nothing to render")
    if names == 0:
        ok = fail(path, "no thread_name records — unlabelled lanes")
    if ok:
        print(f"{path}: OK ({len(events)} events, {spans} spans, "
              f"{names} named lanes)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    results = [validate(path) for path in argv[1:]]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
