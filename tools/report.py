#!/usr/bin/env python3
"""Render a run manifest (RUN_*.json) into human-readable tables.

Reads a manifest produced by sim/manifest.hh and prints:
  * the figure table — per-benchmark prediction accuracy with the
    integer / floating-point / total geometric-mean rows recomputed
    from the per-cell records (and cross-checked against the stored
    gmeans, proving the figure is reproducible from the manifest
    alone);
  * a timing summary — sweep wall time, worker occupancy, queue
    wait, and the slowest cells (the hotspots);
  * a metrics digest — the predictor / simulator counter totals;
  * for supervised manifests (schemaVersion 2) a supervision
    summary — restored / retried / degraded cells, with a "degraded
    cells" table naming every cell that timed out or failed and why.

Usage: report.py MANIFEST.json
       report.py --h2p MANIFEST.json
       report.py --perf-trajectory [TRAJECTORY.json]

The --h2p form renders an attributed manifest's (schemaVersion 3)
misprediction-provenance section: per scheme the miss taxonomy (cold /
interference / hysteresis shares) and the concentration curve (what
share of misses the top 1% / 5% / 10% of static branches carry), then
the cross-scheme hard-to-predict table — the top-K branches by summed
misses, with how many schemes each shows up under, answering whether
the same few branches are hard everywhere or each scheme manufactures
its own misses.

The --perf-trajectory form renders the engine's per-PR headline
throughput history (bench/baselines/PERF_TRAJECTORY.json by default):
one row per entry with Mpred/s, ns/branch, the delta against the
previous entry, and a proportional bar — the longitudinal answer to
"did the engine get faster", where the manifest form answers it for
one run.

Exit:  0 on success; 1 when the file is unreadable, not a
       run-manifest / perf-trajectory, lacks the section a mode
       requires, or a stored gmean disagrees with the recomputed
       value.
"""

import json
import math
import sys

GMEAN_TOLERANCE = 1e-6


def gmean(values):
    if not values or any(v <= 0.0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, field in enumerate(row):
            widths[i] = max(widths[i], len(field))
    lines = []

    def fmt(row):
        cells = [row[0].ljust(widths[0])]
        cells += [field.rjust(widths[i + 1])
                  for i, field in enumerate(row[1:])]
        return "  ".join(cells).rstrip()

    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def figure_table(results):
    """Per-benchmark accuracy plus recomputed gmean rows.

    Returns (text, mismatches) where mismatches counts stored gmeans
    that disagree with the values recomputed from the cells.
    """
    schemes = [r["scheme"] for r in results]
    benchmarks = []  # (name, isInteger) in first-column order
    accuracy = {}  # (benchmark, scheme) -> cell
    for result in results:
        for cell in result["cells"]:
            key = (cell["benchmark"], cell["isInteger"])
            if key not in [(n, i) for n, i in benchmarks]:
                benchmarks.append(key)
            accuracy[(cell["benchmark"], result["scheme"])] = cell

    def fmt_cell(benchmark, scheme):
        cell = accuracy.get((benchmark, scheme))
        if cell is None:
            return "n/a"
        return f"{cell['accuracyPercent']:.2f}"

    rows = []
    for name, integer in benchmarks:
        label = f"{name} ({'int' if integer else 'fp'})"
        rows.append([label] + [fmt_cell(name, s) for s in schemes])

    mismatches = 0
    for row_key, label in (("integer", "gmean (int)"),
                           ("fp", "gmean (fp)"),
                           ("total", "gmean (total)")):
        fields = [label]
        for result in results:
            if row_key == "integer":
                values = [c["accuracyPercent"]
                          for c in result["cells"] if c["isInteger"]]
            elif row_key == "fp":
                values = [c["accuracyPercent"]
                          for c in result["cells"]
                          if not c["isInteger"]]
            else:
                values = [c["accuracyPercent"]
                          for c in result["cells"]]
            recomputed = gmean(values)
            stored = result["gmeans"][row_key]
            if abs(recomputed - stored) >= GMEAN_TOLERANCE:
                mismatches += 1
                fields.append(f"{recomputed:.2f}!={stored:.2f}")
            else:
                fields.append(f"{recomputed:.2f}")
        rows.append(fields)

    text = render_table(["benchmark"] + schemes, rows)
    return text, mismatches


def timing_summary(profile, top=5):
    lines = []
    wall = profile.get("wallSeconds", 0.0)
    busy = sum(profile.get("workerBusySeconds", []))
    cells = profile.get("cells", [])
    ran = [c for c in cells if not c.get("skipped")]
    skipped = len(cells) - len(ran)
    lines.append(f"threads:        {profile.get('threads')}")
    lines.append(f"wall time:      {wall:.3f} s")
    lines.append(f"busy time:      {busy:.3f} s "
                 f"(sum over worker slots)")
    slots = [s for s in profile.get("workerBusySeconds", [])
             if s > 0.0]
    if wall > 0.0 and slots:
        occupancy = busy / (wall * len(slots))
        lines.append(f"occupancy:      {occupancy:.1%} across "
                     f"{len(slots)} active slot(s)")
    lines.append(f"cells:          {len(ran)} run, "
                 f"{skipped} skipped")
    if ran:
        total_queue = sum(c["queueSeconds"] for c in ran)
        lines.append(f"mean queue wait: "
                     f"{total_queue / len(ran):.3f} s")
        lines.append("")
        lines.append(f"slowest cells (top {min(top, len(ran))}):")
        hot = sorted(ran, key=lambda c: c["wallSeconds"],
                     reverse=True)
        rows = [[f"  {c['column']} / {c['workload']}",
                 f"{c['wallSeconds']:.3f} s",
                 f"worker {c['worker']}"] for c in hot[:top]]
        lines.append(render_table(["  cell", "wall", "where"],
                                  rows))
    return "\n".join(lines)


def metrics_digest(metrics):
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    lines = []
    if counters:
        rows = [[name, f"{value:,}"]
                for name, value in sorted(counters.items())]
        lines.append(render_table(["counter", "total"], rows))
    if gauges:
        rows = [[name, f"{value:g}"]
                for name, value in sorted(gauges.items())]
        lines.append("")
        lines.append(render_table(["gauge", "max"], rows))
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = [[name, f"{h['count']:,}", f"{h['mean']:g}",
                 f"{h['min']:g}", f"{h['max']:g}"]
                for name, h in sorted(histograms.items())]
        lines.append("")
        lines.append(render_table(
            ["histogram", "count", "mean", "min", "max"], rows))
    return "\n".join(lines)


def supervision_summary(supervision):
    cells = supervision.get("cells", [])
    restored = [c for c in cells if c.get("restored")]
    retried = [c for c in cells if c.get("attempts", 1) > 1]
    degraded = [c for c in cells
                if c.get("state") in ("timed-out", "failed")]
    skipped = [c for c in cells if c.get("state") == "skipped"]
    lines = []
    lines.append(f"cells:          {len(cells)} total, "
                 f"{len(restored)} restored from checkpoint, "
                 f"{len(skipped)} skipped (n/a)")
    if retried:
        worst = max(c.get("attempts", 1) for c in retried)
        lines.append(f"retries:        {len(retried)} cell(s) needed "
                     f"more than one attempt (worst: {worst})")
    if degraded:
        lines.append(f"DEGRADED:       {len(degraded)} cell(s) "
                     f"missing from the figure — gmeans cover "
                     f"survivors only")
        lines.append("")
        lines.append("degraded cells:")
        rows = [[f"  {c['column']} / {c['workload']}",
                 c["state"],
                 str(c.get("attempts", 1)),
                 f"{c.get('wallMs', 0):,} ms",
                 c.get("error", "")] for c in degraded]
        lines.append(render_table(
            ["  cell", "state", "attempts", "wall", "error"], rows))
    else:
        lines.append("degraded:       none — every scheduled cell "
                     "completed or was n/a")
    return "\n".join(lines)


def heading(title):
    return f"\n== {title} ==\n"


def taxonomy_table(schemes):
    """Per-scheme miss taxonomy + concentration curve."""
    rows = []
    for scheme in schemes:
        taxonomy = scheme.get("taxonomy", {})
        misses = scheme.get("misses", 0)
        branches = scheme.get("branches", 0)

        def share(count):
            return f"{count / misses:.1%}" if misses else "-"

        coverage = {f"{p['fraction']:g}": p["missShare"]
                    for p in scheme.get("coverage", [])}

        def cov(fraction):
            value = coverage.get(fraction)
            return f"{value:.1%}" if value is not None else "-"

        sketch = ("exact" if scheme.get("sketchExact")
                  else f"±{scheme.get('sketchMinCount', 0):,}")
        rows.append([
            scheme.get("scheme", "?"),
            f"{misses:,}",
            f"{misses / branches:.2%}" if branches else "-",
            share(taxonomy.get("cold", 0)),
            share(taxonomy.get("interference", 0)),
            share(taxonomy.get("hysteresis", 0)),
            cov("0.01"), cov("0.05"), cov("0.1"),
            sketch,
        ])
    return render_table(
        ["scheme", "misses", "rate", "cold", "interf", "hyster",
         "top1%", "top5%", "top10%", "sketch"], rows)


def h2p_table(schemes, top=10):
    """Cross-scheme concentration: which branches are hard everywhere.

    Ranks PCs by misses summed over every scheme's top-K table and
    shows how many schemes list each one — a PC near the top with
    schemes ~= all is a structurally hard branch; one listed by a
    single scheme is that scheme's own pathology.
    """
    per_pc = {}  # pc -> {"misses": total, "schemes": count}
    total_misses = 0
    for scheme in schemes:
        total_misses += scheme.get("misses", 0)
        for entry in scheme.get("topPcs", []):
            slot = per_pc.setdefault(entry["pc"],
                                     {"misses": 0, "schemes": 0})
            slot["misses"] += entry["misses"]
            slot["schemes"] += 1
    ranked = sorted(per_pc.items(),
                    key=lambda item: (-item[1]["misses"], item[0]))
    rows = []
    for pc, slot in ranked[:top]:
        share = (f"{slot['misses'] / total_misses:.1%}"
                 if total_misses else "-")
        rows.append([f"0x{pc:x}",
                     f"{slot['schemes']}/{len(schemes)}",
                     f"{slot['misses']:,}",
                     share])
    return render_table(["pc", "schemes", "misses", "share"], rows)


def h2p_summary(manifest, path):
    """Render the attribution section; 1 when there is none."""
    attribution = manifest.get("attribution")
    if not attribution:
        print(f"{path}: no attribution section — rerun the bench "
              f"with provenance enabled (schemaVersion 3)",
              file=sys.stderr)
        return 1
    schemes = attribution.get("schemes", [])
    print(f"run:   {manifest.get('name')}")
    print(f"h2p:   top-{attribution.get('topK')} per scheme, "
          f"{len(schemes)} scheme(s), "
          f"{'complete' if attribution.get('complete') else 'PARTIAL'}")
    if schemes:
        print(heading("miss taxonomy and concentration "
                      "(share of each scheme's misses)"))
        print(taxonomy_table(schemes))
        print(heading("hard-to-predict branches across schemes "
                      "(summed top-K misses)"))
        print(h2p_table(schemes))
        if all(s.get("sketchExact") for s in schemes):
            note = "every scheme exact (sketch never evicted)"
        else:
            note = ("some schemes evicted — counts are upper "
                    "bounds, error bounded by the sketch minimum")
        print(f"\nsketch: {note}")
    return 0


DEFAULT_TRAJECTORY = "bench/baselines/PERF_TRAJECTORY.json"


def perf_trajectory(path):
    """Render the per-PR headline throughput history."""
    try:
        with open(path, encoding="utf-8") as handle:
            trajectory = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 1
    if trajectory.get("kind") != "perf-trajectory":
        print(f"{path}: not a perf-trajectory", file=sys.stderr)
        return 1
    entries = trajectory.get("entries", [])
    if not entries:
        print(f"{path}: no entries", file=sys.stderr)
        return 1

    peak = max(e["MpredPerSec"] for e in entries)
    rows = []
    previous = None
    for entry in entries:
        rate = entry["MpredPerSec"]
        delta = ("" if previous is None
                 else f"{(rate - previous) / previous:+.0%}")
        bar = "#" * max(1, round(24 * rate / peak))
        budget = entry.get("branchBudget")
        rows.append([f"PR {entry.get('pr', '?')}",
                     f"{rate:.1f}",
                     f"{entry.get('nsPerBranch', 0):.1f}",
                     delta,
                     f"{budget:,}" if budget else "?",
                     bar])
        previous = rate
    print(heading("engine throughput trajectory (headline Mpred/s)"))
    print(render_table(
        ["entry", "Mpred/s", "ns/branch", "delta", "budget", ""],
        rows))
    first, last = entries[0]["MpredPerSec"], entries[-1]["MpredPerSec"]
    print(f"\ncumulative: {first:.1f} -> {last:.1f} Mpred/s "
          f"({last / first:.2f}x)")
    for entry in entries:
        note = entry.get("note")
        if note:
            print(f"  PR {entry.get('pr', '?')}: {note}")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--perf-trajectory":
        if len(argv) > 3:
            print(__doc__.strip(), file=sys.stderr)
            return 1
        return perf_trajectory(
            argv[2] if len(argv) == 3 else DEFAULT_TRAJECTORY)
    h2p = len(argv) >= 2 and argv[1] == "--h2p"
    if h2p:
        argv = argv[:1] + argv[2:]
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    try:
        with open(argv[1], encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{argv[1]}: {error}", file=sys.stderr)
        return 1
    if manifest.get("kind") != "run-manifest":
        print(f"{argv[1]}: not a run-manifest", file=sys.stderr)
        return 1
    if h2p:
        return h2p_summary(manifest, argv[1])

    git = manifest.get("git", {})
    dirty = " (dirty)" if git.get("dirty") else ""
    print(f"run:   {manifest.get('name')}")
    print(f"git:   {git.get('sha', '?')}{dirty}")
    options = manifest.get("options")
    if options:
        print(f"opts:  threads={options.get('threads')} "
              f"branchBudget={options.get('branchBudget'):,} "
              f"warmup={options.get('warmupFraction')} "
              f"instrument={options.get('instrument')}")

    mismatches = 0
    results = manifest.get("results", [])
    if results:
        print(heading("figure table (gmeans recomputed from cells)"))
        text, mismatches = figure_table(results)
        print(text)
        if mismatches:
            print(f"\nERROR: {mismatches} stored gmean value(s) "
                  f"disagree with the cells", file=sys.stderr)

    supervision = manifest.get("supervision")
    if supervision:
        print(heading("supervision"))
        print(supervision_summary(supervision))

    profile = manifest.get("profile")
    if profile:
        print(heading("timing"))
        print(timing_summary(profile))

    metrics = manifest.get("metrics")
    if metrics and any(metrics.get(k) for k in
                       ("counters", "gauges", "histograms")):
        print(heading("metrics"))
        print(metrics_digest(metrics))

    notes = manifest.get("notes")
    if notes:
        print(heading("notes"))
        print(json.dumps(notes, indent=2))

    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
