#!/usr/bin/env bash
# Diff-only formatting gate: checks clang-format conformance of the
# lines actually touched relative to a base ref (default: the merge
# base with main), so the repo does not need a flag-day reformat.
#
# Usage: tools/check_format.sh [base-ref]
# Exit:  0 clean (or clang-format unavailable), 1 formatting diffs.
set -u -o pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

base="${1:-}"
if [ -z "$base" ]; then
    base="$(git merge-base HEAD origin/main 2>/dev/null ||
            git merge-base HEAD main 2>/dev/null || echo HEAD)"
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: SKIP (clang-format not installed)"
    exit 0
fi

# git-clang-format ships with clang-format and checks only changed
# lines; fall back to whole-file checking of changed files without it.
if command -v git-clang-format >/dev/null 2>&1; then
    out="$(git clang-format --diff --quiet "$base" -- \
               '*.cc' '*.hh' 2>&1)"
    status=$?
    if [ $status -ne 0 ] && [ -n "$out" ]; then
        echo "$out"
        echo "check_format: changed lines need reformatting" \
             "(apply with: git clang-format $base)"
        exit 1
    fi
    echo "check_format: clean"
    exit 0
fi

failed=0
while IFS= read -r file; do
    [ -f "$file" ] || continue
    if ! diff -u "$file" <(clang-format "$file") >/dev/null; then
        echo "check_format: $file is not clang-format clean"
        failed=1
    fi
done < <(git diff --name-only "$base" -- '*.cc' '*.hh')
if [ $failed -ne 0 ]; then
    echo "check_format: run clang-format -i on the files above"
    exit 1
fi
echo "check_format: clean"
