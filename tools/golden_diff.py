#!/usr/bin/env python3
"""Golden-figure regression comparator for run manifests.

Compares the `results` section of a freshly produced run manifest
(sim/manifest.hh, RUN_*.json) against a pinned golden manifest from
tests/golden/: the result columns must match scheme for scheme and
cell for cell — same benchmarks, same conditional-branch counts
(the workloads are seeded and deterministic), and accuracy / gmean
values equal within a tolerance. Everything outside `results`
(git SHA, timings, metrics) is intentionally ignored.

Usage: golden_diff.py [--tolerance T] GOLDEN ACTUAL [GOLDEN ACTUAL ...]
Exit:  0 when every pair matches, 1 otherwise.

The default tolerance is 1e-9 percentage points: runs are
deterministic, so any real drift is a semantic change — regenerate
the goldens (see tests/golden/README.md) only when the change is
intended and understood.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def close(a, b, tolerance):
    return abs(a - b) <= tolerance


def diff_cell(golden, actual, where, tolerance, problems):
    for key in ("benchmark", "isInteger", "conditionalBranches"):
        if golden.get(key) != actual.get(key):
            problems.append(
                f"{where}.{key}: golden {golden.get(key)!r} != "
                f"actual {actual.get(key)!r}")
    if not close(golden["accuracyPercent"], actual["accuracyPercent"],
                 tolerance):
        problems.append(
            f"{where}.accuracyPercent: golden "
            f"{golden['accuracyPercent']} != actual "
            f"{actual['accuracyPercent']} "
            f"(|diff| {abs(golden['accuracyPercent'] - actual['accuracyPercent']):.3g}"
            f" > tolerance {tolerance:g})")


def diff_results(golden, actual, tolerance, problems):
    g_results = golden.get("results", [])
    a_results = actual.get("results", [])
    g_schemes = [r.get("scheme") for r in g_results]
    a_schemes = [r.get("scheme") for r in a_results]
    if g_schemes != a_schemes:
        problems.append(
            f"results: scheme columns differ:\n"
            f"  golden: {g_schemes}\n  actual: {a_schemes}")
        return
    for index, (g_col, a_col) in enumerate(zip(g_results, a_results)):
        where = f"results[{index}] ({g_col.get('scheme')})"
        g_cells = g_col.get("cells", [])
        a_cells = a_col.get("cells", [])
        if len(g_cells) != len(a_cells):
            problems.append(
                f"{where}: {len(g_cells)} golden cells != "
                f"{len(a_cells)} actual cells")
            continue
        for ci, (g_cell, a_cell) in enumerate(zip(g_cells, a_cells)):
            diff_cell(g_cell, a_cell, f"{where}.cells[{ci}]",
                      tolerance, problems)
        g_gmeans = g_col.get("gmeans", {})
        a_gmeans = a_col.get("gmeans", {})
        for key in ("integer", "fp", "total"):
            if not close(g_gmeans.get(key, 0.0),
                         a_gmeans.get(key, 0.0), tolerance):
                problems.append(
                    f"{where}.gmeans.{key}: golden "
                    f"{g_gmeans.get(key)} != actual "
                    f"{a_gmeans.get(key)}")


def diff_pair(golden_path, actual_path, tolerance):
    problems = []
    try:
        golden = load(golden_path)
        actual = load(actual_path)
    except (OSError, json.JSONDecodeError) as error:
        return [str(error)]
    for manifest, path in ((golden, golden_path),
                           (actual, actual_path)):
        if manifest.get("kind") != "run-manifest":
            problems.append(f"{path}: not a run-manifest")
    if problems:
        return problems
    if golden.get("name") != actual.get("name"):
        problems.append(
            f"name: golden {golden.get('name')!r} != actual "
            f"{actual.get('name')!r}")
    diff_results(golden, actual, tolerance, problems)
    return problems


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max |accuracy difference| in percentage "
                        "points (default: %(default)g)")
    parser.add_argument("paths", nargs="+",
                        metavar="GOLDEN ACTUAL",
                        help="pairs of golden and actual manifests")
    args = parser.parse_args(argv[1:])
    if len(args.paths) % 2:
        parser.error("paths must come in GOLDEN ACTUAL pairs")

    failed = 0
    for i in range(0, len(args.paths), 2):
        golden_path, actual_path = args.paths[i], args.paths[i + 1]
        problems = diff_pair(golden_path, actual_path, args.tolerance)
        if problems:
            failed += 1
            print(f"{actual_path}: DIFFERS from {golden_path}:")
            for problem in problems:
                print(f"  {problem}")
        else:
            cells = sum(
                len(r.get("cells", []))
                for r in load(golden_path).get("results", []))
            print(f"{actual_path}: matches {golden_path} "
                  f"({cells} cells within {args.tolerance:g})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
