#!/usr/bin/env python3
"""Schema validation for run manifests (sim/manifest.hh).

Checks that a RUN_*.json / BENCH_*.json file is a well-formed
"run-manifest" document (schemaVersion 1, 2 or 3): required envelope
fields, typed options, per-cell result records whose accuracy agrees
with their raw counters, gmean rows that are recomputable from the
cells alone, and structurally sound profile / metrics sections.
Version 2 adds a mandatory "supervision" section (written by
sim/supervisor.hh): per-cell state/attempts/wallMs dispositions,
restored-cell counts, and the degraded flag; its cell states must be
drawn from the supervisor's vocabulary and failed cells must carry an
error string.
Version 3 adds a mandatory "attribution" section (sim/attribution.hh):
per-scheme top-K miss PCs with Space-Saving error bounds, a miss
taxonomy (cold / interference / hysteresis / unclassified) that must
sum to the scheme's misses, and a coverage curve. When the section is
`complete` (every contributing cell brought a snapshot — false after
a checkpoint restore, whose journal carries results only) the
per-scheme branch and miss totals are cross-checked against the
result cells; supervision remains optional at version 3 (a plain
SweepRunner can attribute without a supervisor).

Usage: validate_manifest.py MANIFEST.json [MANIFEST.json ...]
Exit:  0 when every file validates, 1 otherwise.
"""

import json
import math
import sys

SCHEMA_VERSIONS = (1, 2, 3)
CELL_STATES = ("ok", "skipped", "timed-out", "failed")


class ValidationError(Exception):
    pass


def expect(condition, message):
    if not condition:
        raise ValidationError(message)


def expect_type(value, types, where):
    expect(isinstance(value, types),
           f"{where}: expected {types}, got {type(value).__name__}")


def expect_number(value, where):
    expect(isinstance(value, (int, float)) and
           not isinstance(value, bool),
           f"{where}: expected a number, got {type(value).__name__}")


def gmean(values):
    if not values or any(v <= 0.0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def check_options(options):
    expect_type(options, dict, "options")
    for key, types in (("threads", int), ("branchBudget", int),
                       ("warmupFraction", (int, float)),
                       ("contextSwitches", bool),
                       ("contextSwitchInterval", int),
                       ("switchOnTrap", bool), ("instrument", bool)):
        expect(key in options, f"options.{key}: missing")
        expect_type(options[key], types, f"options.{key}")
    # Supervision and attribution knobs are optional (absent in older
    # manifests) but typed when present.
    for key, types in (("cellDeadline", (int, float)),
                       ("maxCellAttempts", int),
                       ("retryBackoffSeconds", (int, float)),
                       ("attribution", bool)):
        if key in options:
            expect_type(options[key], types, f"options.{key}")


def check_supervision(supervision):
    expect_type(supervision, dict, "supervision")
    expect_type(supervision.get("degraded"), bool,
                "supervision.degraded")
    restored = supervision.get("restoredCells")
    expect(isinstance(restored, int) and not isinstance(restored, bool)
           and restored >= 0,
           "supervision.restoredCells: not a non-negative int")
    cells = supervision.get("cells")
    expect_type(cells, list, "supervision.cells")

    degraded = False
    restored_count = 0
    for ci, cell in enumerate(cells):
        where = f"supervision.cells[{ci}]"
        expect_type(cell, dict, where)
        expect_type(cell.get("column"), str, f"{where}.column")
        expect_type(cell.get("workload"), str, f"{where}.workload")
        state = cell.get("state")
        expect(state in CELL_STATES,
               f"{where}.state: {state!r} not in {CELL_STATES}")
        attempts = cell.get("attempts")
        expect(isinstance(attempts, int) and
               not isinstance(attempts, bool) and attempts >= 1,
               f"{where}.attempts: not a positive int")
        expect_number(cell.get("wallMs"), f"{where}.wallMs")
        expect(cell["wallMs"] >= 0, f"{where}.wallMs: negative")
        expect_type(cell.get("restored"), bool, f"{where}.restored")
        if cell["restored"]:
            restored_count += 1
        if state in ("timed-out", "failed"):
            degraded = True
            expect_type(cell.get("error"), str, f"{where}.error")
        elif "error" in cell and state == "ok":
            raise ValidationError(f"{where}: ok cell carries an error")

    expect(supervision["degraded"] == degraded,
           f"supervision.degraded: stored "
           f"{supervision['degraded']}, recomputed {degraded}")
    expect(supervision["restoredCells"] == restored_count,
           f"supervision.restoredCells: stored "
           f"{supervision['restoredCells']}, counted {restored_count}")


def check_cell(cell, where):
    expect_type(cell, dict, where)
    expect_type(cell.get("benchmark"), str, f"{where}.benchmark")
    expect_type(cell.get("isInteger"), bool, f"{where}.isInteger")
    expect_number(cell.get("accuracyPercent"),
                  f"{where}.accuracyPercent")
    for key in ("conditionalBranches", "correct", "taken",
                "allBranches", "instructions", "contextSwitches"):
        expect_type(cell.get(key), int, f"{where}.{key}")
        expect(not isinstance(cell[key], bool) and cell[key] >= 0,
               f"{where}.{key}: negative")
    branches = cell["conditionalBranches"]
    if branches:
        recomputed = 100.0 * cell["correct"] / branches
        expect(abs(recomputed - cell["accuracyPercent"]) < 1e-6,
               f"{where}: accuracyPercent {cell['accuracyPercent']} "
               f"!= 100*correct/conditionalBranches {recomputed}")


def check_result(result, index):
    where = f"results[{index}]"
    expect_type(result, dict, where)
    expect_type(result.get("scheme"), str, f"{where}.scheme")
    expect_type(result.get("cells"), list, f"{where}.cells")
    for ci, cell in enumerate(result["cells"]):
        check_cell(cell, f"{where}.cells[{ci}]")

    gmeans = result.get("gmeans")
    expect_type(gmeans, dict, f"{where}.gmeans")
    for key in ("integer", "fp", "total"):
        expect_number(gmeans.get(key), f"{where}.gmeans.{key}")

    # The gmean rows must be recomputable from the cells alone.
    accuracies = [c["accuracyPercent"] for c in result["cells"]]
    ints = [c["accuracyPercent"] for c in result["cells"]
            if c["isInteger"]]
    fps = [c["accuracyPercent"] for c in result["cells"]
           if not c["isInteger"]]
    for key, values in (("total", accuracies), ("integer", ints),
                        ("fp", fps)):
        expect(abs(gmean(values) - gmeans[key]) < 1e-6,
               f"{where}.gmeans.{key}: stored {gmeans[key]} != "
               f"recomputed {gmean(values)}")


def check_profile(profile):
    if profile is None:
        return
    expect_type(profile, dict, "profile")
    expect_type(profile.get("threads"), int, "profile.threads")
    expect_number(profile.get("wallSeconds"), "profile.wallSeconds")
    expect_type(profile.get("cells"), list, "profile.cells")
    expect_type(profile.get("workerBusySeconds"), list,
                "profile.workerBusySeconds")
    for ci, cell in enumerate(profile["cells"]):
        where = f"profile.cells[{ci}]"
        expect_type(cell.get("column"), str, f"{where}.column")
        expect_type(cell.get("workload"), str, f"{where}.workload")
        expect_type(cell.get("worker"), int, f"{where}.worker")
        expect_number(cell.get("queueSeconds"),
                      f"{where}.queueSeconds")
        expect_number(cell.get("wallSeconds"),
                      f"{where}.wallSeconds")
        expect_type(cell.get("skipped"), bool, f"{where}.skipped")


def check_metrics(metrics):
    if metrics is None:
        return
    expect_type(metrics, dict, "metrics")
    for section in ("counters", "gauges", "histograms"):
        expect_type(metrics.get(section), dict, f"metrics.{section}")
    for name, value in metrics["counters"].items():
        expect(isinstance(value, int) and
               not isinstance(value, bool) and value >= 0,
               f"metrics.counters[{name}]: not a non-negative int")
    for name, value in metrics["gauges"].items():
        expect_number(value, f"metrics.gauges[{name}]")
    for name, value in metrics["histograms"].items():
        where = f"metrics.histograms[{name}]"
        expect_type(value, dict, where)
        expect_type(value.get("count"), int, f"{where}.count")
        for key in ("sum", "min", "max", "mean"):
            expect_number(value.get(key), f"{where}.{key}")


def check_attribution_scheme(scheme, results, complete, top_k, where):
    expect_type(scheme, dict, where)
    expect_type(scheme.get("scheme"), str, f"{where}.scheme")
    for key in ("cells", "missingCells", "branches", "misses",
                "staticBranches", "sketchMinCount"):
        value = scheme.get(key)
        expect(isinstance(value, int) and
               not isinstance(value, bool) and value >= 0,
               f"{where}.{key}: not a non-negative int")
    expect_type(scheme.get("sketchExact"), bool,
                f"{where}.sketchExact")
    expect(scheme["misses"] <= scheme["branches"],
           f"{where}: misses {scheme['misses']} > branches "
           f"{scheme['branches']}")

    taxonomy = scheme.get("taxonomy")
    expect_type(taxonomy, dict, f"{where}.taxonomy")
    total = 0
    for key in ("cold", "interference", "hysteresis", "unclassified"):
        value = taxonomy.get(key)
        expect(isinstance(value, int) and
               not isinstance(value, bool) and value >= 0,
               f"{where}.taxonomy.{key}: not a non-negative int")
        total += value
    expect(total == scheme["misses"],
           f"{where}.taxonomy: sums to {total}, misses "
           f"{scheme['misses']}")

    top = scheme.get("topPcs")
    expect_type(top, list, f"{where}.topPcs")
    expect(len(top) <= top_k,
           f"{where}.topPcs: {len(top)} entries exceed topK {top_k}")
    previous = None
    exact_sum = 0
    for ei, entry in enumerate(top):
        ewhere = f"{where}.topPcs[{ei}]"
        expect_type(entry, dict, ewhere)
        for key in ("pc", "misses", "error"):
            value = entry.get(key)
            expect(isinstance(value, int) and
                   not isinstance(value, bool) and value >= 0,
                   f"{ewhere}.{key}: not a non-negative int")
        expect_type(entry.get("pcHex"), str, f"{ewhere}.pcHex")
        expect(entry["error"] <= entry["misses"],
               f"{ewhere}: error bound exceeds the count")
        if scheme["sketchExact"]:
            expect(entry["error"] == 0,
                   f"{ewhere}: exact sketch with non-zero error")
        key_now = (-entry["misses"], entry["pc"])
        expect(previous is None or previous <= key_now,
               f"{ewhere}: not sorted by (misses desc, pc asc)")
        previous = key_now
        exact_sum += entry["misses"]
    if scheme["sketchExact"]:
        # Never-evicted sketch: every missing PC is in the table, so
        # the per-PC counts partition the miss total exactly.
        expect(exact_sum == scheme["misses"],
               f"{where}.topPcs: exact sketch sums to {exact_sum}, "
               f"misses {scheme['misses']}")

    coverage = scheme.get("coverage")
    expect_type(coverage, list, f"{where}.coverage")
    for pi, point in enumerate(coverage):
        pwhere = f"{where}.coverage[{pi}]"
        expect_type(point, dict, pwhere)
        expect_number(point.get("fraction"), f"{pwhere}.fraction")
        expect(isinstance(point.get("branches"), int),
               f"{pwhere}.branches: not an int")
        expect_number(point.get("missShare"), f"{pwhere}.missShare")
        expect(point["missShare"] >= 0,
               f"{pwhere}.missShare: negative")
        if scheme["sketchExact"]:
            expect(point["missShare"] <= 1 + 1e-9,
                   f"{pwhere}.missShare: exceeds 1 on an exact "
                   f"sketch")

    # Cross-check against the result cells: attribution observes the
    # same measured phase the result counters count, so when every
    # cell contributed a snapshot the totals must agree exactly.
    if complete and scheme["missingCells"] == 0:
        columns = [r for r in results
                   if r.get("scheme") == scheme["scheme"]]
        expect(columns,
               f"{where}: scheme {scheme['scheme']!r} has no result "
               f"column")
        cells = columns[0].get("cells", [])
        branches = sum(c["conditionalBranches"] for c in cells)
        misses = sum(c["conditionalBranches"] - c["correct"]
                     for c in cells)
        expect(scheme["branches"] == branches,
               f"{where}.branches: {scheme['branches']} != result "
               f"cells' {branches}")
        expect(scheme["misses"] == misses,
               f"{where}.misses: {scheme['misses']} != result "
               f"cells' {misses}")


def check_attribution(attribution, results):
    expect_type(attribution, dict, "attribution")
    top_k = attribution.get("topK")
    expect(isinstance(top_k, int) and not isinstance(top_k, bool)
           and top_k >= 1,
           "attribution.topK: not a positive int")
    expect_type(attribution.get("complete"), bool,
                "attribution.complete")
    schemes = attribution.get("schemes")
    expect_type(schemes, list, "attribution.schemes")
    for si, scheme in enumerate(schemes):
        check_attribution_scheme(scheme, results,
                                 attribution["complete"], top_k,
                                 f"attribution.schemes[{si}]")


def validate(manifest):
    expect_type(manifest, dict, "manifest")
    expect(manifest.get("kind") == "run-manifest",
           f"kind: expected 'run-manifest', got "
           f"{manifest.get('kind')!r}")
    version = manifest.get("schemaVersion")
    expect(version in SCHEMA_VERSIONS,
           f"schemaVersion: expected one of {SCHEMA_VERSIONS}, got "
           f"{version!r}")
    expect_type(manifest.get("name"), str, "name")
    expect(manifest["name"], "name: empty")

    git = manifest.get("git")
    expect_type(git, dict, "git")
    expect_type(git.get("sha"), str, "git.sha")
    expect_type(git.get("dirty"), bool, "git.dirty")

    options = manifest.get("options")
    if options is not None:
        check_options(options)

    results = manifest.get("results")
    expect_type(results, list, "results")
    for index, result in enumerate(results):
        check_result(result, index)

    check_profile(manifest.get("profile"))
    check_metrics(manifest.get("metrics"))

    supervision = manifest.get("supervision")
    if version == 2:
        expect(supervision is not None,
               "supervision: missing (required at schemaVersion 2)")
    if version >= 2:
        # Optional at version 3: a plain SweepRunner can attribute
        # without a supervisor.
        if supervision is not None:
            check_supervision(supervision)
    else:
        expect(supervision is None,
               "supervision: present but schemaVersion is 1")

    attribution = manifest.get("attribution")
    if version >= 3:
        expect(attribution is not None,
               "attribution: missing (required at schemaVersion 3)")
        check_attribution(attribution, results)
    else:
        expect(attribution is None,
               f"attribution: present but schemaVersion is {version}")

    notes = manifest.get("notes")
    if notes is not None:
        expect_type(notes, dict, "notes")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failed = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            validate(manifest)
        except (OSError, json.JSONDecodeError,
                ValidationError) as error:
            print(f"{path}: INVALID: {error}")
            failed += 1
            continue
        results = manifest.get("results", [])
        cells = sum(len(r.get("cells", [])) for r in results)
        print(f"{path}: OK ({manifest['name']}, "
              f"{len(results)} result column(s), {cells} cell(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
